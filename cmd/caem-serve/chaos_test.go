package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/caem"
	"repro/internal/cluster"
)

// TestMain doubles as the worker-process entry point for the chaos
// test: when CAEM_TEST_WORKER_JOIN is set, the test binary re-executes
// itself as a real `caem-serve -join` worker instead of running tests,
// so the cluster test gets genuine separate processes to kill. When
// CAEM_TEST_WORKER_OBSFILE also names a path, the worker serves its
// observability endpoints on a loopback port and publishes the bound
// address there (atomically, via rename) for the parent to scrape.
func TestMain(m *testing.M) {
	if join := os.Getenv("CAEM_TEST_WORKER_JOIN"); join != "" {
		n, _ := strconv.Atoi(os.Getenv("CAEM_TEST_WORKER_N"))
		if n < 1 {
			n = 1
		}
		cfg := workerConfig{join: join, workers: n, drain: 5 * time.Second}
		if f := os.Getenv("CAEM_TEST_WORKER_OBSFILE"); f != "" {
			cfg.obsAddr = "127.0.0.1:0"
			cfg.obsReady = func(addr string) {
				os.WriteFile(f+".tmp", []byte(addr), 0o644)
				os.Rename(f+".tmp", f)
			}
		}
		os.Exit(workerMain(cfg))
	}
	if role := os.Getenv("CAEM_TEST_SERVE_ROLE"); role != "" {
		// Failover-test coordinator processes (see failover_test.go).
		os.Exit(serveFromEnv(role))
	}
	os.Exit(m.Run())
}

// spawnWorker re-executes the test binary as a worker process joined to
// the coordinator at base.
func spawnWorker(t *testing.T, base string, loops int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CAEM_TEST_WORKER_JOIN="+base,
		fmt.Sprintf("CAEM_TEST_WORKER_N=%d", loops),
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// chaosRequest is a grid big enough that a worker dies mid-campaign:
// 2 protocols × 4 seeds = 8 cells of a few hundred simulated seconds.
const chaosRequest = `{
  "scenarios": ["node-churn"],
  "protocols": ["leach", "scheme1"],
  "seeds": [1, 2, 3, 4],
  "config": {"durationSeconds": 120}
}`

func postCampaign(t *testing.T, base, body string) campaignStatus {
	t.Helper()
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /campaigns: %s: %s", resp.Status, blob)
	}
	var st campaignStatus
	if err := jsonDecode(resp.Body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func jsonDecode(r io.Reader, out any) error {
	blob, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, out)
}

// getBytes fetches a URL's body verbatim — the byte-identical
// comparison must not round-trip through any decoder.
func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, blob)
	}
	return blob
}

// TestClusterChaos is the differential fault-tolerance gate: a
// campaign distributed to real worker processes — one of which is
// SIGKILLed mid-lease — must produce a byte-identical results document
// to the same campaign run single-process with no faults.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test skipped in -short mode")
	}

	// Coordinator with no local workers: every cell must flow through
	// the HTTP lease protocol. Short TTL so the kill recovers quickly.
	st, err := caem.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := newServerWith(st, serverConfig{
		workers: 0,
		lease: cluster.Options{
			LeaseTTL:   500 * time.Millisecond,
			SweepEvery: 100 * time.Millisecond,
			MaxBatch:   2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	camp := postCampaign(t, ts.URL, chaosRequest)
	if camp.State != "running" || camp.Completed != 0 {
		t.Fatalf("campaign did not start fresh: %+v", camp)
	}

	// Phase 1: the victim worker process joins alone, so it is
	// guaranteed to be holding a lease when the SIGKILL lands.
	victim := spawnWorker(t, ts.URL, 2)
	victimTag := fmt.Sprintf("-%d-", victim.Process.Pid)
	holdBy := time.Now().Add(60 * time.Second)
	for {
		var cst cluster.Status
		if err := jsonDecode(bytes.NewReader(getBytes(t, ts.URL+"/cluster/status")), &cst); err != nil {
			t.Fatal(err)
		}
		held := false
		for _, l := range cst.Leases {
			held = held || strings.Contains(l.Worker, victimTag)
		}
		if held {
			break
		}
		if time.Now().After(holdBy) {
			victim.Process.Kill()
			victim.Wait()
			t.Fatalf("victim worker never claimed a lease: %+v", cst)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no drain, no release
		t.Fatal(err)
	}
	victim.Wait()

	// Phase 2: a survivor worker process finishes the campaign,
	// including the cells the victim died holding.
	survivor := spawnWorker(t, ts.URL, 2)
	defer func() {
		survivor.Process.Signal(os.Interrupt) // graceful: leases release
		survivor.Wait()
	}()
	final := waitDone(t, ts.URL, camp.ID)
	if final.State != "done" || final.Completed != final.Total || final.Failed != 0 {
		t.Fatalf("campaign did not recover from the worker kill: %+v", final)
	}
	var cst cluster.Status
	if err := jsonDecode(bytes.NewReader(getBytes(t, ts.URL+"/cluster/status")), &cst); err != nil {
		t.Fatal(err)
	}
	if cst.ExpiredLeases == 0 {
		t.Fatalf("kill never expired a lease — the fault was not injected mid-lease: %+v", cst)
	}
	if len(cst.Poisoned) != 0 {
		t.Fatalf("worker death must not poison cells: %+v", cst.Poisoned)
	}

	// The same facts must be visible in the /metrics exposition —
	// /cluster/status is a thin read of the registry, so the two views
	// can never disagree.
	exp := scrapeMetrics(t, ts.URL)
	if v, ok := exp.Value("caem_lease_expired_total"); !ok || v <= 0 {
		t.Fatalf("caem_lease_expired_total = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := exp.Value("caem_cells_poisoned_total"); ok && v != 0 {
		t.Fatalf("caem_cells_poisoned_total = %v, want 0", v)
	}
	if v, ok := exp.Value("caem_cells_settled_total"); !ok || int(v) != cst.Settled {
		t.Fatalf("caem_cells_settled_total = %v (ok=%v), status says %d", v, ok, cst.Settled)
	}
	chaotic := getBytes(t, ts.URL+"/campaigns/"+camp.ID+"/results")

	// Reference: the same campaign, single process, no faults.
	refStore, err := caem.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	refSrv, err := newServer(refStore, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refTS := httptest.NewServer(refSrv)
	defer refTS.Close()
	refCamp := postCampaign(t, refTS.URL, chaosRequest)
	if got := waitDone(t, refTS.URL, refCamp.ID); got.State != "done" {
		t.Fatalf("reference run failed: %+v", got)
	}
	reference := getBytes(t, refTS.URL+"/campaigns/"+refCamp.ID+"/results")

	if !bytes.Equal(chaotic, reference) {
		t.Fatalf("chaotic cluster run is not byte-identical to the single-process run:\n--- cluster (%d bytes)\n%s\n--- single-process (%d bytes)\n%s",
			len(chaotic), chaotic, len(reference), reference)
	}
}

// TestTransientStoreFaultHealsInvisibly: injected store-write failures
// on the persistence path re-queue cells through the retry/backoff path
// and the campaign still completes with every cell done.
func TestTransientStoreFaultHealsInvisibly(t *testing.T) {
	st, err := caem.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var mu sync.Mutex
	faults := map[string]int{}
	chaos := &cluster.Chaos{
		FailStorePut: func(c cluster.Cell) error {
			mu.Lock()
			defer mu.Unlock()
			if faults[c.Key()] < 2 { // fail each cell's first two persists
				faults[c.Key()]++
				return fmt.Errorf("injected store outage (%s)", c.Key())
			}
			return nil
		},
	}
	srv, err := newServerWith(st, serverConfig{
		workers: 2,
		lease:   cluster.Options{BackoffBase: 5 * time.Millisecond, MaxBatch: 2},
		chaos:   chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	camp := postCampaign(t, ts.URL, testRequest)
	final := waitDone(t, ts.URL, camp.ID)
	if final.State != "done" || final.Failed != 0 || final.Completed != final.Total {
		t.Fatalf("store faults leaked into the campaign outcome: %+v", final)
	}
	mu.Lock()
	injected := len(faults)
	mu.Unlock()
	if injected != final.Total {
		t.Fatalf("faults hit %d cells, want all %d", injected, final.Total)
	}
	var doc resultsDoc
	if code := getJSON(t, ts.URL+"/campaigns/"+camp.ID+"/results", &doc); code != http.StatusOK {
		t.Fatalf("results: HTTP %d", code)
	}
	if len(doc.Cells) != final.Total {
		t.Fatalf("store holds %d cells, want %d", len(doc.Cells), final.Total)
	}
}

// TestShutdownMidCampaignResumes: a graceful shutdown mid-campaign
// drains in-flight cells within the deadline; a fresh server on the
// same store resumes the campaign and finishes it.
func TestShutdownMidCampaignResumes(t *testing.T) {
	dir := t.TempDir()
	st, err := caem.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServerWith(st, serverConfig{workers: 1, lease: cluster.Options{MaxBatch: 1}})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)

	camp := postCampaign(t, ts.URL, chaosRequest)
	// Let at least one cell land in the store, then pull the plug.
	settleBy := time.Now().Add(60 * time.Second)
	for st.Len() == 0 {
		if time.Now().After(settleBy) {
			t.Fatal("no cell ever persisted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts.Close()
	if err := srv.Shutdown(30 * time.Second); err != nil {
		t.Fatalf("graceful shutdown missed its drain deadline: %v", err)
	}
	persisted := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if persisted == 8 {
		t.Skip("campaign finished before shutdown; resume path not exercised")
	}

	srv2, ts2, st2 := startServer(t, dir)
	defer func() { ts2.Close(); srv2.Close(); st2.Close() }()
	final := waitDone(t, ts2.URL, camp.ID)
	if final.State != "done" || final.Completed != final.Total {
		t.Fatalf("campaign did not resume after graceful shutdown: %+v", final)
	}
	restored := 0
	for _, cell := range final.Cells {
		if cell.Status == "restored" {
			restored++
		}
	}
	if restored != persisted {
		t.Fatalf("resume restored %d cells, want the %d persisted before shutdown", restored, persisted)
	}
}
