GO ?= go

.PHONY: all build test race vet bench bench-smoke figures scenarios examples clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runner/ ./internal/experiment/ ./caem/

vet:
	$(GO) vet ./...

# Full benchmark sweep (one iteration each; the experiment benchmarks are
# whole-figure regenerations, so more iterations take minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# The hot-path smoke check CI runs: the event engine, channel sampling,
# and MAC, per simulated second at full scale.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkSimulatedSecond -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkFigure9_NodesAlive -benchtime 1x .

# Regenerate every paper artifact (tables, figures, ablations) into out/.
figures:
	$(GO) run ./cmd/caem-bench -out out/

# Smoke-run every library scenario through the real CLI (the library is
# also unit-tested by `go test ./caem/`; this drives file loading, flag
# overrides, and the full caem-sim path end to end). The 500 s horizon
# reaches past every library timeline event — all scenarios' last events
# fire by 480 s — so the smoke executes the world mutations themselves,
# not just spec loading.
scenarios:
	@set -e; for f in scenarios/*.json; do \
		echo "== $$f"; \
		$(GO) run ./cmd/caem-sim -scenario $$f -duration 500 >/dev/null; \
	done; echo "all scenarios ran"

# Compile and vet the examples explicitly (they are plain main packages,
# so a plain `go test ./...` would not catch vet regressions in them).
examples:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

clean:
	rm -rf out/
