package store_test

import (
	"fmt"
	"os"

	"repro/internal/store"
)

// A store round-trips self-describing cell records through an
// append-only JSONL log with O(1) keyed lookups.
func Example() {
	dir, err := os.MkdirTemp("", "store-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	s, err := store.Open(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	rec := store.Record{
		Campaign: "docs",
		Hash:     "0011223344556677",
		Scenario: "node-churn",
		Protocol: "CAEM-scheme1",
		Seed:     3,
		Summary:  store.Summary{TotalConsumedJ: 41.5, Delivered: 1200, DeliveryRate: 0.96},
	}
	if err := s.Put(rec); err != nil {
		fmt.Println(err)
		return
	}
	if err := s.Close(); err != nil {
		fmt.Println(err)
		return
	}

	// Reopen — a fresh process recovering the same directory.
	s2, err := store.Open(dir)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s2.Close()
	got, ok, err := s2.Get(rec.Key())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cells=%d found=%v consumed=%.1fJ delivered=%d\n",
		s2.Len(), ok, got.Summary.TotalConsumedJ, got.Summary.Delivered)
	// Output:
	// cells=1 found=true consumed=41.5J delivered=1200
}
