package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Wire bodies of the lease protocol. Leases and results reuse the Lease
// and CellResult JSON forms directly.
type claimRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

type settleRequest struct {
	Results []CellResult `json:"results"`
}

// RegisterHTTP mounts the lease protocol and cluster observability on
// mux:
//
//	POST /leases/claim         {"worker","max"} → 200 Lease | 204 no work
//	POST /leases/{id}/renew    → 204 | 410 lease gone
//	POST /leases/{id}/complete {"results":[...]} → 204 | 410
//	POST /leases/{id}/release  {"results":[...]} → 204 | 410
//	GET  /cluster/status       → Status
//
// 410 Gone maps to ErrLeaseGone on the Remote side: the worker drops
// the batch and claims fresh work.
func (c *Coordinator) RegisterHTTP(mux *http.ServeMux) {
	c.registerHTTP(mux, nil)
}

// RegisterHTTPObserved mounts the same routes as RegisterHTTP with
// per-route request-count and latency instrumentation on reg, labeled
// by the mux pattern.
func (c *Coordinator) RegisterHTTPObserved(mux *http.ServeMux, reg *obs.Registry) {
	c.registerHTTP(mux, reg)
}

func (c *Coordinator) registerHTTP(mux *http.ServeMux, reg *obs.Registry) {
	handle := func(pattern string, h http.HandlerFunc) {
		if reg != nil {
			mux.Handle(pattern, obs.WrapHandler(reg, pattern, h))
			return
		}
		mux.HandleFunc(pattern, h)
	}
	handle("POST /leases/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad claim body: %v", err), http.StatusBadRequest)
			return
		}
		if req.Worker == "" {
			http.Error(w, "claim needs a worker name", http.StatusBadRequest)
			return
		}
		lease, err := c.Claim(req.Worker, req.Max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if lease == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lease)
	})
	handle("POST /leases/{id}/renew", func(w http.ResponseWriter, r *http.Request) {
		settleHTTP(w, c.Renew(r.PathValue("id")))
	})
	handle("POST /leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		var req settleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad complete body: %v", err), http.StatusBadRequest)
			return
		}
		settleHTTP(w, c.Complete(r.PathValue("id"), req.Results))
	})
	handle("POST /leases/{id}/release", func(w http.ResponseWriter, r *http.Request) {
		var req settleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad release body: %v", err), http.StatusBadRequest)
			return
		}
		settleHTTP(w, c.Release(r.PathValue("id"), req.Results))
	})
	handle("GET /cluster/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Status())
	})
}

func settleHTTP(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrLeaseGone):
		http.Error(w, err.Error(), http.StatusGone)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// Remote is the worker-side Queue over HTTP: the client half of
// RegisterHTTP, used by cmd/caem-serve -join.
type Remote struct {
	// Base is the coordinator's base URL (no trailing slash needed).
	Base string
	// Client overrides http.DefaultClient when non-nil.
	Client *http.Client
}

func (r *Remote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

// post sends a JSON body and decodes a 2xx response into out (when
// non-nil). 410 maps to ErrLeaseGone; 204 leaves out untouched.
func (r *Remote) post(path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	resp, err := r.client().Post(r.Base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusGone:
		return ErrLeaseGone
	case resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode >= 300:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Claim implements Queue.
func (r *Remote) Claim(worker string, max int) (*Lease, error) {
	blob, err := json.Marshal(claimRequest{Worker: worker, Max: max})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := r.client().Post(r.Base+"/leases/claim", "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode >= 300:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: claim: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var lease Lease
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		return nil, fmt.Errorf("cluster: decoding lease: %w", err)
	}
	return &lease, nil
}

// Renew implements Queue.
func (r *Remote) Renew(leaseID string) error {
	return r.post("/leases/"+leaseID+"/renew", struct{}{}, nil)
}

// Complete implements Queue.
func (r *Remote) Complete(leaseID string, results []CellResult) error {
	return r.post("/leases/"+leaseID+"/complete", settleRequest{Results: results}, nil)
}

// Release implements Queue.
func (r *Remote) Release(leaseID string, results []CellResult) error {
	return r.post("/leases/"+leaseID+"/release", settleRequest{Results: results}, nil)
}

// WaitIdle polls the coordinator until it reports no queued, delayed,
// or leased work, or the timeout elapses — a convenience for tests and
// scripted drains.
func (r *Remote) WaitIdle(timeout, poll time.Duration) (Status, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := r.client().Get(r.Base + "/cluster/status")
		if err == nil {
			var st Status
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && st.Queue == 0 && st.Delayed == 0 && len(st.Leases) == 0 {
				return st, nil
			}
		}
		if time.Now().After(deadline) {
			return Status{}, fmt.Errorf("cluster: coordinator not idle after %v", timeout)
		}
		time.Sleep(poll)
	}
}
