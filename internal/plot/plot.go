// Package plot renders simple line charts as SVG, using only the standard
// library. It exists so cmd/caem-bench can emit the paper's figures as
// images next to the CSV data — enough for visual comparison against the
// paper's plots, not a general plotting library.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a single-axes line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG pixel dimensions; zero values take
	// the 720x480 default.
	Width, Height int
}

// palette holds visually distinct stroke colors, cycled by series index.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

// niceTicks returns ~n human-friendly tick positions spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo
	if span <= 0 {
		// Degenerate range: fabricate a small symmetric window.
		if lo == 0 {
			return []float64{0, 1}
		}
		pad := math.Abs(lo) * 0.1
		return []float64{lo - pad, lo, lo + pad}
	}
	rawStep := span / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag >= 5:
		step = 10 * mag
	case rawStep/mag >= 2:
		step = 5 * mag
	case rawStep/mag >= 1:
		step = 2 * mag
	default:
		step = mag
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step*1e-9; v += step {
		// Normalize -0 and float noise.
		if math.Abs(v) < step*1e-9 {
			v = 0
		}
		ticks = append(ticks, v)
	}
	if len(ticks) < 2 {
		ticks = []float64{lo, hi}
	}
	return ticks
}

// formatTick renders a tick label compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVG renders the chart. Charts with no drawable points still produce a
// valid (empty-axes) document.
func (c Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 480
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 55
	)
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	// Data extent.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
		if ymin > 0 {
			ymin = 0 // anchor constant series at zero for context
		}
	}
	// Y headroom.
	ypad := (ymax - ymin) * 0.05
	ymax += ypad
	if ymin > 0 && ymin-ypad < 0 {
		ymin = 0
	} else {
		ymin -= ypad
	}

	xpix := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	ypix := func(y float64) float64 { return float64(marginT) + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Grid + ticks.
	b.WriteString(`<g font-family="sans-serif" font-size="11" fill="#333">` + "\n")
	for _, tx := range niceTicks(xmin, xmax, 8) {
		if tx < xmin || tx > xmax {
			continue
		}
		px := xpix(tx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", px, marginT, px, float64(marginT)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n", px, float64(marginT)+plotH+16, formatTick(tx))
	}
	for _, ty := range niceTicks(ymin, ymax, 7) {
		if ty < ymin || ty > ymax {
			continue
		}
		py := ypix(ty)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, py, marginL+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n", marginL-6, py+4, formatTick(ty))
	}
	b.WriteString("</g>\n")

	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#444"/>`+"\n", marginL, marginT, plotW, plotH)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, h-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, esc(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpix(s.X[i]), ypix(s.Y[i])))
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n", color, strings.Join(pts, " "))
		// Point markers for sparse series.
		if len(pts) <= 40 {
			for _, p := range pts {
				var px, py float64
				fmt.Sscanf(p, "%f,%f", &px, &py)
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n", px, py, color)
			}
		}
	}

	// Legend.
	ly := marginT + 10
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="2.5"/>`+"\n",
			marginL+plotW-150, ly, marginL+plotW-125, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			marginL+plotW-118, ly+4, esc(s.Name))
		ly += 18
	}

	b.WriteString("</svg>\n")
	return b.String()
}
