package core

import (
	"fmt"

	"repro/internal/sim"
)

// TraceKind classifies a trace event.
type TraceKind int

const (
	// TraceRound marks a LEACH round start; Value is the head count.
	TraceRound TraceKind = iota
	// TraceSensorState marks a sensor FSM transition; Detail is the new
	// state.
	TraceSensorState
	// TraceHeadState marks a cluster-head FSM transition; Detail is the
	// new state.
	TraceHeadState
	// TraceBurstStart marks a data burst beginning; Value is the burst
	// size.
	TraceBurstStart
	// TraceDelivered marks a packet delivery; Value is the ABICM class.
	TraceDelivered
	// TraceChannelFail marks a packet corrupted by channel error.
	TraceChannelFail
	// TraceCollision marks a resolved collision; Value is the number of
	// colliding senders.
	TraceCollision
	// TraceDrop marks a packet loss; Detail is "buffer" or "retry".
	TraceDrop
	// TraceDeferral marks a declined transmission opportunity; Detail is
	// "csi" or "busy".
	TraceDeferral
	// TraceDeath marks a battery exhaustion.
	TraceDeath
	// TraceRevive marks a dead node returning to service (world event).
	TraceRevive
	// TraceMove marks a node re-placement (world event); Value is the
	// distance moved in whole metres.
	TraceMove
	// TraceInterference marks an interference burst boundary; Value is
	// the affected node count, Detail "start" or "end".
	TraceInterference
	// TraceSink marks a base-station outage boundary; Detail is "down"
	// or "up".
	TraceSink
	numTraceKinds
)

var traceKindNames = [...]string{
	TraceRound:        "round",
	TraceSensorState:  "sensor-state",
	TraceHeadState:    "head-state",
	TraceBurstStart:   "burst-start",
	TraceDelivered:    "delivered",
	TraceChannelFail:  "channel-fail",
	TraceCollision:    "collision",
	TraceDrop:         "drop",
	TraceDeferral:     "deferral",
	TraceDeath:        "death",
	TraceRevive:       "revive",
	TraceMove:         "move",
	TraceInterference: "interference",
	TraceSink:         "sink",
}

func (k TraceKind) String() string {
	if k >= 0 && int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceKinds returns all kinds in declaration order.
func TraceKinds() []TraceKind {
	out := make([]TraceKind, numTraceKinds)
	for i := range out {
		out[i] = TraceKind(i)
	}
	return out
}

// TraceEvent is one observable protocol event. Tracing is pull-free: when
// Config.Trace is non-nil, the simulation calls it synchronously at each
// event; the callback must not mutate simulation state.
type TraceEvent struct {
	T      sim.Time
	Kind   TraceKind
	Node   int    // acting node index (-1 when network-wide)
	Value  int    // kind-specific quantity (burst size, class, count)
	Detail string // kind-specific label (state name, drop reason)
}

func (e TraceEvent) String() string {
	if e.Detail != "" {
		return fmt.Sprintf("%.6f %s node=%d v=%d %s", e.T.Seconds(), e.Kind, e.Node, e.Value, e.Detail)
	}
	return fmt.Sprintf("%.6f %s node=%d v=%d", e.T.Seconds(), e.Kind, e.Node, e.Value)
}

// emit publishes a trace event if tracing is enabled.
func (net *Network) emit(kind TraceKind, node int, value int, detail string) {
	if net.cfg.Trace == nil {
		return
	}
	net.cfg.Trace(TraceEvent{T: net.eng.Now(), Kind: kind, Node: node, Value: value, Detail: detail})
}
