package main

import (
	"net/http"

	"repro/internal/api"
)

// apiRoute is one row of the service's route table: the canonical
// path (always mounted under /v1), how the legacy unversioned path is
// kept alive for one release, and the one-line contract recorded in
// the api-check golden.
//
// Legacy modes:
//
//	redirect — 301 to the /v1 twin, query string preserved (GETs a
//	           generic client can follow)
//	alias    — served directly at both paths. POSTs must alias: a
//	           301 makes net/http clients replay the request as a
//	           bodyless GET. /healthz and /metrics also alias, since
//	           liveness probes and metric scrapers are commonly
//	           configured to treat any redirect as a failure.
type apiRoute struct {
	Method string
	Path   string
	Legacy string // "redirect" | "alias"
	Doc    string
}

// routeTable is the single source of truth for the /v1 API surface.
// mountAPI wires the campaign rows; the lease and cluster rows are
// mounted by cluster.RegisterHTTPObserved under the same conventions
// and are listed here so the golden covers the whole surface.
// TestAPIRouteTable locks this table against testdata/api_routes.golden
// and probes every row against a live server — changing the API
// without updating the golden fails `make api-check`.
//
// /debug/pprof/ stays unversioned by Go convention (tooling hardcodes
// the path), as does the worker-mode observability listener.
var routeTable = []apiRoute{
	{"GET", "/healthz", "alias", "liveness + store stats + build version"},
	{"POST", "/campaigns", "alias", "submit a campaign (idempotent: equal requests map to one id)"},
	{"GET", "/campaigns", "redirect", "list campaigns; page_size, page_token"},
	{"GET", "/campaigns/{id}", "redirect", "status: per-cell states + counters"},
	{"GET", "/campaigns/{id}/results", "redirect", "queryable results; scenario, protocol, metric, min, max, top, percentiles, page_size, page_token"},
	{"GET", "/campaigns/{id}/progress", "redirect", "NDJSON progress stream"},
	{"GET", "/metrics", "alias", "Prometheus text-format exposition"},
	{"GET", "/cluster/status", "redirect", "work queue, leases, workers, poisons"},
	{"GET", "/cluster/leader", "redirect", "leadership: current leader URL, epoch, role"},
	{"POST", "/leases/claim", "alias", "lease protocol: claim a cell batch"},
	{"POST", "/leases/{id}/renew", "alias", "lease protocol: heartbeat"},
	{"POST", "/leases/{id}/complete", "alias", "lease protocol: settle results"},
	{"POST", "/leases/{id}/release", "alias", "lease protocol: return unfinished cells"},
}

// mountAPI wires the campaign-service rows of the route table. Rows
// without a handler here belong to the coordinator, which mounts them
// itself (cluster.RegisterHTTPObserved).
func (s *server) mountAPI() {
	handlers := map[string]http.HandlerFunc{
		"GET /healthz":                 s.handleHealth,
		"POST /campaigns":              s.handleCreate,
		"GET /campaigns":               s.handleList,
		"GET /campaigns/{id}":          s.handleStatus,
		"GET /campaigns/{id}/results":  s.handleResults,
		"GET /campaigns/{id}/progress": s.handleProgress,
		"GET /cluster/leader":          s.handleLeader,
		"GET /metrics":                 s.reg.Handler().ServeHTTP,
	}
	for _, rt := range routeTable {
		key := rt.Method + " " + rt.Path
		h, ok := handlers[key]
		if !ok {
			continue // coordinator-owned row
		}
		s.handle(rt.Method+" /v1"+rt.Path, h)
		if rt.Legacy == "alias" {
			s.handle(key, h)
		} else {
			s.handle(key, api.RedirectV1)
		}
	}
}
