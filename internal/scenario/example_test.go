package scenario_test

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
)

// Load decodes and validates a spec; unknown fields and malformed
// events fail loudly instead of silently corrupting a study.
func ExampleLoad() {
	spec := `{
	  "name": "evening-surge",
	  "description": "traffic doubles for a minute, then a channel squall",
	  "timeline": [
	    {"at": 60, "type": "burst", "scale": 2, "durationSeconds": 60},
	    {"at": 90, "type": "channel", "channel": {"shadowingSigmaDB": 10}}
	  ]
	}`
	sc, err := scenario.Load(strings.NewReader(spec))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d events\n", sc.Name, sc.EventCount())

	// A typo'd event is rejected with a precise location.
	bad := `{"name": "oops", "timeline": [{"at": 5, "type": "burst", "scale": 2}]}`
	_, err = scenario.Load(strings.NewReader(bad))
	fmt.Println(err)
	// Output:
	// evening-surge: 2 events
	// scenario "oops": timeline[0] (burst): needs a positive durationSeconds
}

// Selectors pick event targets: everything, explicit indices, or a
// strided half-open range — unioned, sorted, deduplicated.
func ExampleSelector_Resolve() {
	every := scenario.Selector{} // zero value selects all nodes
	all, _ := every.Resolve(5)
	fmt.Println(all)

	striped := scenario.Selector{From: 0, To: 10, Every: 3, Indices: []int{4}}
	picked, _ := striped.Resolve(10)
	fmt.Println(picked)

	_, err := scenario.Selector{Indices: []int{12}}.Resolve(10)
	fmt.Println(err)
	// Output:
	// [0 1 2 3 4]
	// [0 3 4 6 9]
	// scenario: node index 12 outside [0, 10)
}
