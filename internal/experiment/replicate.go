package experiment

// Replication support. Every experiment grid cell (a labelled
// configuration) runs across the options' seed list; the full
// cell × seed grid goes through the worker pool in one submission-
// ordered batch, so serial and parallel executions aggregate
// bit-identically. Tables collapse each cell's replicates into
// "mean±half" 95% confidence-interval strings via internal/stats.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// replicates holds one grid cell's runs, in seed-list order.
type replicates struct {
	label string
	runs  []core.Result
}

// runReplicated expands every cell across the options' seed list and
// executes the whole grid through the worker pool, cell-major then
// seed. The returned slice is parallel to cells.
func (o Options) runReplicated(cells []runner.Job) []replicates {
	seeds := o.seedList()
	jobs := make([]runner.Job, 0, len(cells)*len(seeds))
	for _, c := range cells {
		for _, s := range seeds {
			cfg := c.Config
			cfg.Seed = s
			jobs = append(jobs, runner.Job{Label: fmt.Sprintf("%s/seed%d", c.Label, s), Config: cfg})
		}
	}
	results := o.run(jobs)
	out := make([]replicates, len(cells))
	for i, c := range cells {
		out[i] = replicates{label: c.Label, runs: results[i*len(seeds) : (i+1)*len(seeds)]}
	}
	return out
}

// stream aggregates one scalar metric over the cell's replicates.
func (r replicates) stream(pick func(core.Result) float64) stats.Stream {
	var s stats.Stream
	for i := range r.runs {
		s.Add(pick(r.runs[i]))
	}
	return s
}

// cell renders one scalar metric as a "mean±half" table cell.
func (r replicates) cell(format func(float64) string, pick func(core.Result) float64) string {
	s := r.stream(pick)
	return ciString(s, format)
}

// mean returns one scalar metric's replicate mean.
func (r replicates) mean(pick func(core.Result) float64) float64 {
	s := r.stream(pick)
	return s.Mean()
}

// lifetimeStream aggregates network lifetime over the replicates that
// reached network death; its Count tells how many did.
func (r replicates) lifetimeStream() stats.Stream {
	var s stats.Stream
	for _, res := range r.runs {
		if res.NetworkDead {
			s.Add(res.NetworkLifetime.Seconds())
		}
	}
	return s
}

// repNote is the standard report note describing what a table cell
// is. With a single replicate there is no interval — cells are bare
// point estimates — and the note must say so rather than claim a CI.
func repNote(o Options) string {
	n := len(o.seedList())
	if n < 2 {
		return "cells are single-seed point estimates (1 replicate; no confidence interval)"
	}
	return fmt.Sprintf("cells are mean ± 95%% CI over %d seed replicates", n)
}

// ciString renders a replicate aggregate as "mean±half" (95% CI). A
// single replicate has no interval — the NaN policy of internal/stats
// — and renders as the bare mean, so Replications=1 reproduces the old
// single-seed tables' shape.
func ciString(s stats.Stream, format func(float64) string) string {
	if s.Count() < 2 {
		return format(s.Mean())
	}
	return format(s.Mean()) + "±" + format(s.CI95())
}

// pairMarker is the " [k/n]" disclosure suffix for cells that only k
// of n replicates (or matched pairs) defined.
func pairMarker(k, n int) string { return fmt.Sprintf(" [%d/%d]", k, n) }

// partialCell renders a replicate aggregate that only some of the n
// replicates defined (e.g. a lifetime when not every seed reached
// network death): the usual "mean±half" plus the pairMarker disclosure
// whenever k < n. "-" when no replicate defined it.
func partialCell(s stats.Stream, n int, format func(float64) string) string {
	if s.Count() == 0 {
		return "-"
	}
	cell := ciString(s, format)
	if k := int(s.Count()); k < n {
		cell += pairMarker(k, n)
	}
	return cell
}

// seriesStream aggregates a per-run time series value at time t across
// replicates; ok is false when any replicate has no sample at t yet.
func seriesStream(runs []core.Result, pick func(core.Result) *metrics.TimeSeries, t sim.Time) (stats.Stream, bool) {
	var s stats.Stream
	for i := range runs {
		v, ok := pick(runs[i]).At(t)
		if !ok {
			return stats.Stream{}, false
		}
		s.Add(v)
	}
	return s, true
}

// seriesCell renders the across-replicate value of a time series at t.
func seriesCell(runs []core.Result, pick func(core.Result) *metrics.TimeSeries, t sim.Time, format func(float64) string) string {
	s, ok := seriesStream(runs, pick, t)
	if !ok {
		return "-"
	}
	return ciString(s, format)
}

// meanSeries samples the across-replicate mean of a per-run time
// series on a uniform grid, for charting.
func meanSeries(name string, runs []core.Result, pick func(core.Result) *metrics.TimeSeries, horizon sim.Time, points int) plot.Series {
	out := plot.Series{Name: name}
	for i := 0; i < points; i++ {
		t := sim.Time(int64(horizon) * int64(i) / int64(points-1))
		s, ok := seriesStream(runs, pick, t)
		if !ok {
			continue
		}
		out.X = append(out.X, t.Seconds())
		out.Y = append(out.Y, s.Mean())
	}
	return out
}

func energySeries(r core.Result) *metrics.TimeSeries { return r.EnergySeries }
func aliveSeries(r core.Result) *metrics.TimeSeries  { return r.AliveSeries }
