// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulator.
//
// Every stochastic process in the simulation (packet arrivals, fading
// oscillator phases, shadowing innovations, backoff draws, LEACH election
// draws, ...) draws from its own Stream, derived from a master seed and a
// stream identifier. Two streams with different identifiers are
// statistically independent, and a simulation re-run with the same master
// seed reproduces bit-identical results regardless of event interleaving,
// because no two processes share a stream.
//
// The generator is xoshiro256**, seeded through splitmix64 as recommended
// by its authors. Both are implemented here so the package depends only on
// the standard library (and keeps output stable across Go releases, unlike
// math/rand's unexported algorithms).
package rng

import (
	"fmt"
	"math"
)

// splitmix64 advances the given state and returns the next output. It is
// used for seeding and for hashing stream identifiers.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source derives independent Streams from a master seed. Source itself is
// stateless; it is safe for concurrent use.
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at the given master seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the master seed the Source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Reseed re-roots the Source at a new master seed. Streams already
// derived keep their old state; reseed them individually with InitStream.
func (s *Source) Reseed(seed uint64) { s.seed = seed }

// Stream returns the stream named by the (kind, id) pair. The same pair
// always yields a stream with the same initial state.
//
// kind partitions the stream space by purpose (e.g. "arrival", "fading")
// and id distinguishes entities of that purpose (e.g. the node index).
func (s *Source) Stream(kind string, id uint64) *Stream {
	st := &Stream{}
	s.InitStream(st, kind, id)
	return st
}

// InitStream (re)initializes an existing Stream in place to the exact
// state Stream(kind, id) would return, without allocating. It is the
// reset path for long-lived simulation contexts: a reused entity keeps
// its Stream allocation across runs and is rewound to the deterministic
// per-(seed, kind, id) origin.
func (s *Source) InitStream(st *Stream, kind string, id uint64) {
	// Hash the kind string into the seeding state, then mix in the id.
	h := s.seed
	for i := 0; i < len(kind); i++ {
		h = splitmix64(&h) ^ uint64(kind[i])
	}
	h ^= id * 0x9e3779b97f4a7c15
	for i := range st.s {
		st.s[i] = splitmix64(&h)
	}
	// xoshiro must not be seeded with the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	st.normCached = false
	st.normValue = 0
}

// Stream is a single xoshiro256** generator. It is not safe for concurrent
// use; give each goroutine (or each simulated entity) its own Stream.
type Stream struct {
	s [4]uint64
	// cached second normal variate from the polar method
	normCached bool
	normValue  float64
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn with non-positive n=%d", n))
	}
	// Lemire's nearly-divisionless bounded generation, simplified: the
	// modulo bias for n << 2^64 is far below anything observable in a
	// simulation, but we keep the rejection loop for exactness.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1), by
// inversion. Scale by 1/lambda for rate lambda.
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method (caching the paired variate).
func (r *Stream) NormFloat64() float64 {
	if r.normCached {
		r.normCached = false
		return r.normValue
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.normValue = v * f
		r.normCached = true
		return u * f
	}
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth multiplication; for large means a normal approximation with
// continuity correction, which is ample for traffic-load modelling.
func (r *Stream) Poisson(mean float64) int {
	if mean < 0 {
		panic(fmt.Sprintf("rng: Poisson with negative mean %v", mean))
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Floor(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
	if v < 0 {
		return 0
	}
	return int(v)
}

// Perm returns a uniformly random permutation of [0, n), Fisher-Yates.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
