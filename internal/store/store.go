package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	dataFile     = "results.jsonl"
	indexFile    = "index.json"
	campaignsDir = "campaigns"

	// recordVersion is the on-disk record format version.
	recordVersion = 1
	// indexVersion is the on-disk index document version. v2 adds the
	// distinct-cell count (active + segments); v1 documents (flat-log
	// stores from before segmentation) are still accepted when no
	// segments exist.
	indexVersion = 2
	// indexFlushEvery bounds how many appended records an index
	// checkpoint can trail behind; a crash re-scans at most this many
	// log lines on the next Open.
	indexFlushEvery = 64

	// defaultSegmentBytes is the active-tail size at which Put rolls the
	// tail into an immutable segment.
	defaultSegmentBytes = 4 << 20
	// defaultCompactAfter is how many superseded segment-resident cells
	// accumulate before a background compaction is scheduled.
	defaultCompactAfter = 1024
)

// Options tunes a store's segmentation behaviour. The zero value picks
// the defaults.
type Options struct {
	// SegmentBytes is the active-tail size threshold at which Put rolls
	// the tail into an immutable segment. <= 0 selects the default
	// (4 MiB).
	SegmentBytes int64
	// CompactAfter schedules a background compaction once this many
	// segment-resident cells have been superseded by re-puts. 0 selects
	// the default (1024); negative disables background compaction
	// (Compact can still be called explicitly).
	CompactAfter int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.CompactAfter == 0 {
		o.CompactAfter = defaultCompactAfter
	}
	return o
}

// WriteError wraps a failure to make stored data durable: appending a
// record line ("append"), fsyncing the log ("sync"), checkpointing the
// index ("index"), rolling the active tail into a segment ("roll"), or
// rewriting segments during compaction ("compact"). Callers that retry
// transient storage faults can detect it with errors.As; Unwrap exposes
// the underlying cause.
type WriteError struct {
	Op  string // "append" | "sync" | "index" | "roll" | "compact"
	Err error
}

func (e *WriteError) Error() string { return fmt.Sprintf("store: %s: %v", e.Op, e.Err) }
func (e *WriteError) Unwrap() error { return e.Err }

// Key identifies one stored campaign cell. Hash is the caller-computed
// content hash of everything that determines the cell's result besides
// (Scenario, Protocol, Seed) — for caem campaigns, the normalized base
// configuration plus the full scenario spec — so a stored cell is only
// ever reused for a bit-identical rerun.
type Key struct {
	Hash     string
	Scenario string
	Protocol string
	Seed     uint64
}

// String renders the canonical index key. Fields are escaped so that no
// scenario or protocol name can alias another key.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/%d",
		url.PathEscape(k.Hash), url.PathEscape(k.Scenario), url.PathEscape(k.Protocol), k.Seed)
}

// validate reports the first structural problem with the key.
func (k Key) validate() error {
	switch {
	case k.Hash == "":
		return fmt.Errorf("store: key has empty hash")
	case k.Scenario == "":
		return fmt.Errorf("store: key has empty scenario")
	case k.Protocol == "":
		return fmt.Errorf("store: key has empty protocol")
	}
	return nil
}

// Summary is the flat per-run metric set stored with each cell: the
// headline evaluation metrics every campaign report and aggregate is
// built from. It deliberately excludes the bulky per-run detail (time
// series, per-node outcomes, round reports) — a stored cell answers
// "what did this run measure", not "replay everything it did".
type Summary struct {
	DurationSeconds        float64 `json:"durationSeconds"`
	Rounds                 int     `json:"rounds"`
	TotalConsumedJ         float64 `json:"totalConsumedJ"`
	AvgRemainingJ          float64 `json:"avgRemainingJ"`
	AliveAtEnd             int     `json:"aliveAtEnd"`
	FirstDeathSeconds      float64 `json:"firstDeathSeconds,omitempty"`
	FirstDeathValid        bool    `json:"firstDeathValid,omitempty"`
	NetworkLifetimeSeconds float64 `json:"networkLifetimeSeconds,omitempty"`
	NetworkDead            bool    `json:"networkDead,omitempty"`
	EnergyPerPacketMilliJ  float64 `json:"energyPerPacketMilliJ"`
	Generated              uint64  `json:"generated"`
	Delivered              uint64  `json:"delivered"`
	DroppedBuffer          uint64  `json:"droppedBuffer"`
	DroppedRetry           uint64  `json:"droppedRetry"`
	DeliveryRate           float64 `json:"deliveryRate"`
	ThroughputKbps         float64 `json:"throughputKbps"`
	MeanDelayMs            float64 `json:"meanDelayMs"`
	P95DelayMs             float64 `json:"p95DelayMs"`
	MaxDelayMs             float64 `json:"maxDelayMs"`
	QueueStdDev            float64 `json:"queueStdDev"`
	Collisions             uint64  `json:"collisions"`
	ChannelFails           uint64  `json:"channelFails"`
}

// Record is one stored campaign cell: a self-describing line of
// results.jsonl. Campaign is informative (which campaign first produced
// the cell); lookups go through Key, so any campaign with the same
// content hash reuses the cell.
type Record struct {
	V        int     `json:"v"`
	Campaign string  `json:"campaign,omitempty"`
	Hash     string  `json:"hash"`
	Scenario string  `json:"scenario"`
	Protocol string  `json:"protocol"`
	Seed     uint64  `json:"seed"`
	Summary  Summary `json:"summary"`
}

// Key returns the record's cell identity.
func (r Record) Key() Key {
	return Key{Hash: r.Hash, Scenario: r.Scenario, Protocol: r.Protocol, Seed: r.Seed}
}

// indexEntry locates one record line inside results.jsonl.
type indexEntry struct {
	K   string `json:"k"`
	Off int64  `json:"off"`
	Len int    `json:"len"`
}

// indexDoc is the on-disk index: the active-tail entries in append
// order, the tail length they cover (so Open can detect staleness in
// O(1)), and the distinct-cell count across segments plus tail (so Open
// does not need to load segment indexes to know the store size).
type indexDoc struct {
	V        int          `json:"v"`
	Size     int64        `json:"size"`
	Distinct int          `json:"distinct,omitempty"`
	Entries  []indexEntry `json:"entries"`
}

// Stats is a snapshot of the store's shape and access counters. The
// scan counters let tests prove access-path claims: a query path that
// never rescans keeps FullScans flat, and bloom/range pruning shows up
// as SegmentLoads staying below the segment count.
type Stats struct {
	Segments      int   // immutable segment files
	Distinct      int   // distinct stored cells (segments + active tail)
	ActiveRecords int   // record lines in the active tail
	ActiveBytes   int64 // bytes in the active tail
	SegGarbage    int   // segment-resident cells superseded since last compaction

	FullScans        uint64 // global-order materializations (Records/Keys/index rebuild)
	SegmentLoads     uint64 // lazy segment index loads
	Rolls            uint64 // active-tail rolls into segments
	Compactions      uint64 // completed compaction passes
	CompactedRecords uint64 // superseded records dropped by compaction
}

// Store is an open results store: immutable segment files plus an
// active JSONL tail. All methods are safe for concurrent use within one
// process.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File              // active tail handle
	size      int64                 // current validated tail length
	index     map[string]indexEntry // key → latest tail record line
	order     []Key                 // tail first-Put order, deduplicated
	segs      []*segment            // immutable segments, oldest first
	nextSeq   int                   // next segment sequence number
	distinct  int                   // distinct keys across segments + tail
	dirty     int                   // records appended since last index flush
	recovered int64                 // torn-tail bytes dropped by Open
	fault     func(op string) error // injected write fault (tests)
	met       *storeMetrics         // nil until Observe; nil is inert

	segGarbage int  // segment-resident keys superseded by tail re-puts
	compacting bool // a background compaction goroutine is scheduled
	closed     bool
	compactWG  sync.WaitGroup

	fullScans        uint64
	segmentLoads     uint64
	rolls            uint64
	compactions      uint64
	compactedRecords uint64
}

// SetFault installs a write-fault injector consulted before each log
// append ("append"), log fsync ("sync"), index checkpoint ("index"),
// tail roll ("roll"), and per-segment compaction rewrite ("compact"). A
// non-nil return surfaces from Put/Flush/Compact/Close as a *WriteError
// with that Op. Fault-injection instrumentation for tests; pass nil to
// clear.
//
// The injection points model real partial-failure windows: an "append"
// fault fails before any byte is written (the log is untouched); a
// "sync" fault fails after the line hit the page cache but before the
// store acknowledged it, so the record is not indexed in this process
// but — exactly like a crash between write and fsync that the kernel
// nevertheless flushed — may legitimately reappear on reopen. A "roll"
// fault fails before the segment file is published (the tail is
// untouched, the triggering record already durable); a "compact" fault
// fails between segment rewrites, leaving a mix of rewritten and
// original segments that last-write-wins resolution reads correctly.
func (s *Store) SetFault(f func(op string) error) {
	s.mu.Lock()
	s.fault = f
	s.mu.Unlock()
}

// faultAt reports the injected fault for op, if any. Caller holds mu.
func (s *Store) faultAt(op string) error {
	if s.fault == nil {
		return nil
	}
	if err := s.fault(op); err != nil {
		s.met.fault(op)
		return &WriteError{Op: op, Err: err}
	}
	return nil
}

// Open opens (creating if needed) the store rooted at dir with default
// options. See OpenWith.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith opens (creating if needed) the store rooted at dir: segment
// footers are loaded (never their records), the active-tail index is
// restored from its checkpoint, any tail the checkpoint does not cover
// is scanned, and a torn final line is truncated if the previous writer
// crashed mid-append. Startup cost is O(segments) + the uncheckpointed
// tail, not O(cells). A flat v1 log larger than the segment threshold
// is rolled into segments on open (the v1 → v2 migration path).
func OpenWith(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, campaignsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, segmentsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, dataFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), f: f, index: make(map[string]indexEntry)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	if s.size >= s.opts.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// load restores the in-memory state: segment footers, then the tail
// index from index.json when it is present and consistent with the log,
// then a scan of whatever the index does not cover. A stale-beyond-the-
// log index (the log was truncated behind our back) is discarded and
// rebuilt from scratch.
func (s *Store) load() error {
	segs, err := loadSegments(filepath.Join(s.dir, segmentsDir))
	if err != nil {
		return err
	}
	s.segs = segs
	if n := len(segs); n > 0 {
		s.nextSeq = segs[n-1].seq + 1
	}

	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	logLen := fi.Size()

	covered := int64(0)
	distinctKnown := false
	if blob, err := os.ReadFile(filepath.Join(s.dir, indexFile)); err == nil {
		var doc indexDoc
		versionOK := false
		if json.Unmarshal(blob, &doc) == nil && doc.Size <= logLen {
			// A v1 document predates segmentation: it is only trustworthy
			// when no segments exist (its entry set IS the whole store).
			versionOK = doc.V == indexVersion || (doc.V == 1 && len(s.segs) == 0)
		}
		if versionOK {
			ok := true
			for _, e := range doc.Entries {
				if e.Off < 0 || e.Len <= 0 || e.Off+int64(e.Len) > doc.Size {
					ok = false
					break
				}
			}
			if ok {
				for _, e := range doc.Entries {
					if _, dup := s.index[e.K]; !dup {
						if k, err := s.keyAt(e); err == nil {
							s.order = append(s.order, k)
						} else {
							ok = false
							break
						}
					}
					s.index[e.K] = e
				}
				if ok {
					covered = doc.Size
					if doc.V == indexVersion {
						s.distinct = doc.Distinct
						distinctKnown = true
					}
				}
			}
			if !ok { // undecodable entry: fall back to a full rebuild
				s.index = make(map[string]indexEntry)
				s.order = nil
			}
		}
	}
	if err := s.scan(covered, logLen, distinctKnown); err != nil {
		return err
	}
	if !distinctKnown {
		if err := s.recountDistinctLocked(); err != nil {
			return err
		}
	}
	return nil
}

// keyAt re-reads the record at an index entry and returns its Key —
// used when rehydrating the append order from the index file.
func (s *Store) keyAt(e indexEntry) (Key, error) {
	var r Record
	if err := s.readAt(e, &r); err != nil {
		return Key{}, err
	}
	return r.Key(), nil
}

// scan decodes log records in [from, to), extending the tail index, and
// truncates the log at the first torn or undecodable line. When
// distinctKnown, the distinct count (restored from a v2 checkpoint) is
// maintained incrementally: each new tail key is counted unless a
// segment already holds it, in which case it is superseding garbage.
func (s *Store) scan(from, to int64, distinctKnown bool) error {
	s.size = from
	if from >= to {
		return nil
	}
	buf := make([]byte, to-from)
	if _, err := s.f.ReadAt(buf, from); err != nil {
		return fmt.Errorf("store: reading log tail: %w", err)
	}
	off := from
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			break // torn tail: no final newline
		}
		line := buf[:nl]
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.V != recordVersion || r.Key().validate() != nil {
			break // undecodable or wrong-version line: stop here
		}
		k := r.Key()
		if _, dup := s.index[k.String()]; !dup {
			s.order = append(s.order, k)
			if distinctKnown {
				inSeg, err := s.inSegmentsLocked(k)
				if err != nil {
					return err
				}
				if inSeg {
					s.segGarbage++
				} else {
					s.distinct++
				}
			}
		}
		s.index[k.String()] = indexEntry{K: k.String(), Off: off, Len: nl + 1}
		off += int64(nl + 1)
		buf = buf[nl+1:]
		s.size = off
	}
	if s.size < to {
		s.recovered = to - s.size
		if err := s.f.Truncate(s.size); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	return nil
}

// recountDistinctLocked rebuilds the distinct-cell count by unioning
// every segment's key set with the tail — the rebuild path when no v2
// checkpoint is available.
func (s *Store) recountDistinctLocked() error {
	if len(s.segs) == 0 {
		s.distinct = len(s.order)
		return nil
	}
	s.fullScans++
	s.met.fullScan()
	set := make(map[string]struct{}, len(s.order))
	for _, seg := range s.segs {
		if err := s.ensureSegIndex(seg); err != nil {
			return err
		}
		for _, k := range seg.order {
			set[k.String()] = struct{}{}
		}
	}
	for _, k := range s.order {
		set[k.String()] = struct{}{}
	}
	s.distinct = len(set)
	return nil
}

// ensureSegIndex loads a segment's lazy index, counting the load.
// Caller holds mu.
func (s *Store) ensureSegIndex(g *segment) error {
	if g.index != nil {
		return nil
	}
	if err := g.ensureIndex(); err != nil {
		return err
	}
	s.segmentLoads++
	s.met.segmentLoad()
	return nil
}

// inSegmentsLocked reports whether any segment holds the key, pruning
// with bloom filters and footer ranges before touching segment data.
func (s *Store) inSegmentsLocked(k Key) (bool, error) {
	ks := k.String()
	for i := len(s.segs) - 1; i >= 0; i-- {
		seg := s.segs[i]
		if !seg.mayContain(k, ks) {
			continue
		}
		if err := s.ensureSegIndex(seg); err != nil {
			return false, err
		}
		if _, ok := seg.index[ks]; ok {
			return true, nil
		}
	}
	return false, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of distinct stored cells.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.distinct
}

// Stats returns a snapshot of the store's shape and access counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Segments:         len(s.segs),
		Distinct:         s.distinct,
		ActiveRecords:    len(s.order),
		ActiveBytes:      s.size,
		SegGarbage:       s.segGarbage,
		FullScans:        s.fullScans,
		SegmentLoads:     s.segmentLoads,
		Rolls:            s.rolls,
		Compactions:      s.compactions,
		CompactedRecords: s.compactedRecords,
	}
}

// RecoveredBytes reports how many torn-tail bytes Open dropped to
// restore a consistent log (0 for a clean shutdown).
func (s *Store) RecoveredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Has reports whether a cell with the given key is stored.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[k.String()]; ok {
		return true
	}
	in, err := s.inSegmentsLocked(k)
	return err == nil && in
}

// Get returns the stored record for the key: the active tail first
// (always the latest version), then segments newest to oldest, pruned
// by bloom filters and footer ranges — one record line read, no scans.
func (s *Store) Get(k Key) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(k)
}

func (s *Store) getLocked(k Key) (Record, bool, error) {
	ks := k.String()
	if e, ok := s.index[ks]; ok {
		var r Record
		if err := s.readAt(e, &r); err != nil {
			return Record{}, false, err
		}
		return r, true, nil
	}
	for i := len(s.segs) - 1; i >= 0; i-- {
		seg := s.segs[i]
		if !seg.mayContain(k, ks) {
			continue
		}
		if err := s.ensureSegIndex(seg); err != nil {
			return Record{}, false, err
		}
		e, ok := seg.index[ks]
		if !ok {
			continue
		}
		var r Record
		if err := seg.readAt(e, &r); err != nil {
			return Record{}, false, err
		}
		return r, true, nil
	}
	return Record{}, false, nil
}

// readAt decodes the record line at a tail index entry. Caller holds mu
// (or is single-threaded during load).
func (s *Store) readAt(e indexEntry, r *Record) error {
	buf := make([]byte, e.Len)
	if _, err := s.f.ReadAt(buf, e.Off); err != nil {
		return fmt.Errorf("store: reading record at %d: %w", e.Off, err)
	}
	if err := json.Unmarshal(bytes.TrimSuffix(buf, []byte{'\n'}), r); err != nil {
		return fmt.Errorf("store: corrupt record at %d: %w", e.Off, err)
	}
	return nil
}

// Put appends one record to the active tail and updates the index.
// Re-putting an existing key appends a fresh line and repoints the
// index at it (last write wins), keeping the tail append-only. When the
// tail reaches the segment threshold it is rolled into an immutable
// segment; re-puts of segment-resident keys accumulate garbage that
// eventually schedules a background compaction.
func (s *Store) Put(r Record) error {
	r.V = recordVersion
	if err := r.Key().validate(); err != nil {
		return err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	k := r.Key()
	_, inTail := s.index[k.String()]
	inSeg := false
	if !inTail {
		// Resolved before any byte is written so a segment read error
		// cannot leave the count and the log disagreeing.
		if inSeg, err = s.inSegmentsLocked(k); err != nil {
			return err
		}
	}
	if err := s.faultAt("append"); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(line, s.size); err != nil {
		s.met.fault("append")
		return &WriteError{Op: "append", Err: err}
	}
	if err := s.faultAt("sync"); err != nil {
		return err
	}
	syncStart := time.Now()
	if err := s.f.Sync(); err != nil {
		s.met.fault("sync")
		return &WriteError{Op: "sync", Err: err}
	}
	s.met.observeFsync(time.Since(syncStart).Seconds())
	if !inTail {
		s.order = append(s.order, k)
		if inSeg {
			s.segGarbage++
		} else {
			s.distinct++
		}
	}
	s.index[k.String()] = indexEntry{K: k.String(), Off: s.size, Len: len(line)}
	s.size += int64(len(line))
	s.dirty++
	s.met.appendDone(len(line), s.distinct)
	if s.size >= s.opts.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			return err
		}
	} else if s.dirty >= indexFlushEvery {
		if err := s.flushIndexLocked(); err != nil {
			return err
		}
	}
	s.maybeCompactLocked()
	return nil
}

// rollLocked rolls the active tail into a new immutable segment:
// deduplicated record lines (latest content at first-put position) are
// written with footer and trailer to a temp file, fsynced, renamed into
// place, and only then is the tail truncated and the index check-
// pointed. A crash anywhere leaves either the intact tail (segment
// never published) or the segment plus a tail whose records duplicate
// it — both of which reopen correctly under last-write-wins.
func (s *Store) rollLocked() error {
	if len(s.order) == 0 {
		return nil
	}
	if err := s.faultAt("roll"); err != nil {
		return err
	}
	keys := make([]Key, 0, len(s.order))
	lines := make([][]byte, 0, len(s.order))
	var dataSize int64
	for _, k := range s.order {
		e := s.index[k.String()]
		buf := make([]byte, e.Len)
		if _, err := s.f.ReadAt(buf, e.Off); err != nil {
			return &WriteError{Op: "roll", Err: err}
		}
		keys = append(keys, k)
		lines = append(lines, buf)
		dataSize += int64(e.Len)
	}
	ft := footerOf(keys, dataSize)
	path := filepath.Join(s.dir, segmentsDir, segName(s.nextSeq))
	if err := writeSegmentFile(path, lines, ft); err != nil {
		return &WriteError{Op: "roll", Err: err}
	}
	seg := &segment{path: path, seq: s.nextSeq, footer: ft}
	seg.index = make(map[string]segEntry, len(keys))
	seg.order = append([]Key(nil), keys...)
	off := int64(0)
	for i, k := range keys {
		seg.index[k.String()] = segEntry{Off: off, Len: len(lines[i])}
		off += int64(len(lines[i]))
	}
	s.segs = append(s.segs, seg)
	s.nextSeq++
	if err := s.f.Truncate(0); err != nil {
		return &WriteError{Op: "roll", Err: err}
	}
	if err := s.f.Sync(); err != nil {
		return &WriteError{Op: "roll", Err: err}
	}
	s.size = 0
	s.index = make(map[string]indexEntry)
	s.order = nil
	s.rolls++
	s.met.rollDone(len(s.segs))
	return s.flushIndexLocked()
}

// maybeCompactLocked schedules a background compaction when enough
// superseded segment-resident cells have accumulated.
func (s *Store) maybeCompactLocked() {
	if s.opts.CompactAfter <= 0 || s.segGarbage < s.opts.CompactAfter || s.compacting || s.closed {
		return
	}
	s.compacting = true
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		s.mu.Lock()
		defer s.mu.Unlock()
		defer func() { s.compacting = false }()
		if s.closed {
			return
		}
		s.compactLocked() //nolint:errcheck // surfaced via write-fault metrics; next trigger retries
	}()
}

// Compact synchronously rewrites segments to drop superseded
// (last-write-wins) cells: newest segment to oldest, each record is
// kept only if no newer segment or the active tail holds its key.
// Fully-superseded segments are deleted. Each surviving segment is
// rewritten via temp file + rename, so a crash between rewrites leaves
// a mix of rewritten and original segments that reopens correctly.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: compact on closed store")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	seen := make(map[string]struct{}, s.distinct)
	for ks := range s.index {
		seen[ks] = struct{}{}
	}
	dropped := 0
	for i := len(s.segs) - 1; i >= 0; i-- {
		seg := s.segs[i]
		if err := s.ensureSegIndex(seg); err != nil {
			return err
		}
		survivors := 0
		for _, k := range seg.order {
			if _, dup := seen[k.String()]; !dup {
				survivors++
			}
		}
		original := len(seg.order)
		if survivors == original {
			for _, k := range seg.order {
				seen[k.String()] = struct{}{}
			}
			continue
		}
		if err := s.faultAt("compact"); err != nil {
			return err
		}
		if survivors == 0 {
			if err := os.Remove(seg.path); err != nil {
				return &WriteError{Op: "compact", Err: err}
			}
			seg.closeHandle()
			dropped += len(seg.order)
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			continue
		}
		keys := make([]Key, 0, survivors)
		lines := make([][]byte, 0, survivors)
		var dataSize int64
		for _, k := range seg.order {
			ks := k.String()
			if _, dup := seen[ks]; dup {
				continue
			}
			raw, err := seg.rawAt(seg.index[ks])
			if err != nil {
				return err
			}
			keys = append(keys, k)
			lines = append(lines, raw)
			dataSize += int64(len(raw))
		}
		ft := footerOf(keys, dataSize)
		if err := writeSegmentFile(seg.path, lines, ft); err != nil {
			return &WriteError{Op: "compact", Err: err}
		}
		// The rename replaced the file under any cached handle; rebuild
		// the in-memory view to match the new contents.
		seg.closeHandle()
		seg.footer = ft
		seg.index = make(map[string]segEntry, len(keys))
		seg.order = append([]Key(nil), keys...)
		off := int64(0)
		for j, k := range keys {
			seg.index[k.String()] = segEntry{Off: off, Len: len(lines[j])}
			off += int64(len(lines[j]))
			seen[k.String()] = struct{}{}
		}
		dropped += original - survivors
	}
	s.compactions++
	s.compactedRecords += uint64(dropped)
	s.segGarbage = 0
	s.met.compactionDone(dropped, len(s.segs))
	return nil
}

// Keys returns every stored cell key in first-Put order (segments
// oldest to newest, then the active tail). This materializes the global
// order, which requires loading every segment index — a full scan.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	order, _, err := s.globalOrderLocked()
	if err != nil {
		return nil
	}
	return order
}

// Records returns every stored record in first-Put order (for a re-put
// key, the latest version). This is the full-scan path — intentionally
// the only read that touches every segment's data.
func (s *Store) Records() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	order, src, err := s.globalOrderLocked()
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(order))
	for _, k := range order {
		ks := k.String()
		var r Record
		if seg := src[ks]; seg != nil {
			if err := seg.readAt(seg.index[ks], &r); err != nil {
				return nil, err
			}
		} else {
			if err := s.readAt(s.index[ks], &r); err != nil {
				return nil, err
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// globalOrderLocked materializes the store-wide first-Put key order and
// the latest source (segment, or nil for the active tail) of each key.
func (s *Store) globalOrderLocked() ([]Key, map[string]*segment, error) {
	s.fullScans++
	s.met.fullScan()
	order := make([]Key, 0, s.distinct)
	src := make(map[string]*segment, s.distinct)
	for _, seg := range s.segs {
		if err := s.ensureSegIndex(seg); err != nil {
			return nil, nil, err
		}
		for _, k := range seg.order {
			ks := k.String()
			if _, dup := src[ks]; !dup {
				order = append(order, k)
			}
			src[ks] = seg
		}
	}
	for _, k := range s.order {
		ks := k.String()
		if _, dup := src[ks]; !dup {
			order = append(order, k)
		}
		src[ks] = nil
	}
	return order, src, nil
}

// Flush checkpoints the index to disk (atomically: temp file + rename).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushIndexLocked()
}

func (s *Store) flushIndexLocked() error {
	if err := s.faultAt("index"); err != nil {
		return err
	}
	start := time.Now()
	doc := indexDoc{V: indexVersion, Size: s.size, Distinct: s.distinct,
		Entries: make([]indexEntry, 0, len(s.order))}
	for _, k := range s.order {
		doc.Entries = append(doc.Entries, s.index[k.String()])
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(s.dir, indexFile+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		s.met.fault("index")
		return &WriteError{Op: "index", Err: err}
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, indexFile)); err != nil {
		s.met.fault("index")
		return &WriteError{Op: "index", Err: err}
	}
	s.dirty = 0
	s.met.observeIndexCheckpoint(time.Since(start).Seconds())
	return nil
}

// Close waits for any background compaction, checkpoints the index, and
// releases the file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.flushIndexLocked()
	for _, seg := range s.segs {
		seg.closeHandle()
	}
	cerr := s.f.Close()
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("store: %w", cerr)
	}
	return nil
}

// campaignPath maps a campaign id to its blob file. Ids are escaped so
// arbitrary identifiers cannot traverse outside the campaigns dir.
func (s *Store) campaignPath(id string) (string, error) {
	if id == "" {
		return "", fmt.Errorf("store: empty campaign id")
	}
	return filepath.Join(s.dir, campaignsDir, url.PathEscape(id)+".json"), nil
}

// PutCampaign persists an opaque campaign spec blob under id
// (atomically), creating or replacing it.
func (s *Store) PutCampaign(id string, blob []byte) error {
	path, err := s.campaignPath(id)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetCampaign returns the campaign spec blob stored under id.
func (s *Store) GetCampaign(id string) ([]byte, error) {
	path, err := s.campaignPath(id)
	if err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: campaign %q: %w", id, err)
	}
	return blob, nil
}

// Campaigns returns the ids of every stored campaign spec, sorted.
func (s *Store) Campaigns() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, campaignsDir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id, err := url.PathUnescape(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue // not one of ours
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}
