package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/caem"
	"repro/internal/obs"
)

// scrapeMetrics fetches base/metrics, checks the content type, and
// parses the body with the strict exposition parser — every scrape in
// the test suite doubles as a format-validity check.
func scrapeMetrics(t *testing.T, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, obs.ContentType)
	}
	exp, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition is not valid Prometheus text format: %v", err)
	}
	return exp
}

// TestMetricsCoordinatorMode runs a campaign to completion on a
// coordinator with local workers, then asserts the /metrics exposition
// is valid, complete, and consistent with /cluster/status and the
// store contents.
func TestMetricsCoordinatorMode(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	camp := postCampaign(t, ts.URL, testRequest)
	final := waitDone(t, ts.URL, camp.ID)
	if final.State != "done" {
		t.Fatalf("campaign did not finish: %+v", final)
	}

	exp := scrapeMetrics(t, ts.URL)
	if v, ok := exp.Value("caem_cells_settled_total"); !ok || int(v) != final.Total {
		t.Fatalf("caem_cells_settled_total = %v (ok=%v), want %d", v, ok, final.Total)
	}
	if v, ok := exp.Value("caem_store_appends_total"); !ok || int(v) < final.Total {
		t.Fatalf("caem_store_appends_total = %v (ok=%v), want >= %d", v, ok, final.Total)
	}
	if n, ok := exp.Sum("caem_worker_cells_completed_total"); !ok || int(n) < final.Total {
		t.Fatalf("worker cell counters sum to %v (ok=%v), want >= %d", n, ok, final.Total)
	}
	if v, ok := exp.Value("caem_build_info", "version", "dev", "goversion", goVersion()); !ok || v != 1 {
		t.Fatalf("caem_build_info missing or not 1: %v (ok=%v)", v, ok)
	}
	if _, ok := exp.Sum("caem_http_requests_total"); !ok {
		t.Fatal("HTTP route instrumentation missing from exposition")
	}
	for _, name := range []string{
		"caem_lease_claims_total", "caem_lease_completed_total",
		"caem_lease_batch_cells", "caem_store_fsync_seconds",
		"caem_coordinator_queue_depth", "caem_http_request_seconds",
	} {
		if !exp.Has(name) {
			t.Errorf("expected metric family %s missing from exposition", name)
		}
	}

	// Status and metrics are two reads of the same registry.
	var cst clusterStatus
	if code := getJSON(t, ts.URL+"/cluster/status", &cst); code != http.StatusOK {
		t.Fatalf("cluster status: HTTP %d", code)
	}
	if v, _ := exp.Value("caem_cells_settled_total"); int(v) != cst.Settled {
		t.Fatalf("metrics say %d settled, status says %d", int(v), cst.Settled)
	}
	if v, _ := exp.Value("caem_lease_expired_total"); int(v) != cst.ExpiredLeases {
		t.Fatalf("metrics say %d expired, status says %d", int(v), cst.ExpiredLeases)
	}

	// The production registry must pass the naming lint.
	if errs := srv.reg.Lint("caem_"); len(errs) != 0 {
		t.Fatalf("registry fails the metric-naming lint: %v", errs)
	}
}

// clusterStatus is the subset of cluster.Status this test reads.
type clusterStatus struct {
	Settled       int `json:"settled"`
	ExpiredLeases int `json:"expiredLeases"`
}

func goVersion() string {
	out := httptest.NewRecorder()
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "probe")
	reg.Handler().ServeHTTP(out, httptest.NewRequest("GET", "/metrics", nil))
	exp, err := obs.ParseText(out.Body)
	if err != nil {
		panic(err)
	}
	for _, s := range exp.Families["caem_build_info"].Samples {
		return s.Labels["goversion"]
	}
	return ""
}

// TestMetricsWorkerJoinMode spawns a real `-join` worker subprocess
// with its observability listener enabled and scrapes the worker's own
// /metrics endpoint while it executes a campaign.
func TestMetricsWorkerJoinMode(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess worker test skipped in -short mode")
	}
	srv, ts, st := startServerNoWorkers(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	obsFile := filepath.Join(t.TempDir(), "obs-addr")
	worker := spawnWorkerObs(t, ts.URL, 2, obsFile)
	defer func() {
		worker.Process.Signal(os.Interrupt)
		worker.Wait()
	}()

	// The worker publishes its bound observability address once the
	// listener is up.
	var addr string
	deadline := time.Now().Add(30 * time.Second)
	for {
		if blob, err := os.ReadFile(obsFile); err == nil && len(blob) > 0 {
			addr = string(blob)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never published its observability address")
		}
		time.Sleep(20 * time.Millisecond)
	}
	base := "http://" + addr

	camp := postCampaign(t, ts.URL, testRequest)
	final := waitDone(t, ts.URL, camp.ID)
	if final.State != "done" {
		t.Fatalf("campaign did not finish on the joined worker: %+v", final)
	}

	exp := scrapeMetrics(t, base)
	if n, ok := exp.Sum("caem_worker_cells_completed_total"); !ok || int(n) < final.Total {
		t.Fatalf("worker-side cells completed = %v (ok=%v), want >= %d", n, ok, final.Total)
	}
	if n, ok := exp.Sum("caem_worker_simulated_seconds_total"); !ok || n <= 0 {
		t.Fatalf("worker simulated seconds = %v (ok=%v), want > 0", n, ok)
	}
	if !exp.Has("caem_worker_heartbeat_rtt_seconds") {
		t.Error("heartbeat RTT histogram missing from worker exposition")
	}
	if !exp.Has("caem_build_info") {
		t.Error("build info missing from worker exposition")
	}

	// The worker serves pprof too.
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker /debug/pprof/cmdline: %s", resp.Status)
	}
}

// TestPprofMounted asserts the profiling surface is reachable on the
// coordinator mux without going through http.DefaultServeMux.
func TestPprofMounted(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
	}
}

// TestHealthzVersion asserts /healthz carries the build version.
func TestHealthzVersion(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()
	var health struct {
		OK      bool   `json:"ok"`
		Version string `json:"version"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if !health.OK || health.Version != "dev" {
		t.Fatalf("healthz = %+v, want ok with version dev", health)
	}
}

// startServerNoWorkers starts a coordinator with no local workers, so
// joined subprocess workers do all execution.
func startServerNoWorkers(t *testing.T, dir string) (*server, *httptest.Server, *caem.CampaignStore) {
	t.Helper()
	st, err := caem.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServerWith(st, serverConfig{workers: 0})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return srv, httptest.NewServer(srv), st
}

// spawnWorkerObs re-executes the test binary as a joined worker with
// its observability listener enabled, publishing the bound address to
// obsFile.
func spawnWorkerObs(t *testing.T, base string, loops int, obsFile string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CAEM_TEST_WORKER_JOIN="+base,
		fmt.Sprintf("CAEM_TEST_WORKER_N=%d", loops),
		"CAEM_TEST_WORKER_OBSFILE="+obsFile,
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}
