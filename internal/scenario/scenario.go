package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// EventType names a timeline event kind. The types cover seven categories
// of world change: node lifecycle (kill, revive), energy (topup), traffic
// (set-rate, scale-rate, ramp-rate, burst), channel (channel), mobility
// (move), interference (interference), and sink (sink-down, sink-up).
type EventType string

const (
	// EventKill forces the selected nodes to fail (non-battery failure:
	// the battery keeps its charge).
	EventKill EventType = "kill"
	// EventRevive returns selected dead nodes to service with EnergyJ
	// added charge (0 = the run's initial per-node budget).
	EventRevive EventType = "revive"
	// EventTopUp adds EnergyJ to the selected alive nodes' batteries.
	EventTopUp EventType = "topup"
	// EventSetRate sets the selected nodes' Poisson arrival rate to
	// RatePerSecond (0 silences them).
	EventSetRate EventType = "set-rate"
	// EventScaleRate multiplies the selected nodes' current arrival rate
	// by Scale.
	EventScaleRate EventType = "scale-rate"
	// EventRampRate moves the selected nodes' arrival rate linearly to
	// RatePerSecond over DurationSeconds in Steps discrete steps, starting
	// from FromRatePerSecond (or each node's configured base rate).
	EventRampRate EventType = "ramp-rate"
	// EventBurst multiplies the selected nodes' arrival rate by Scale for
	// DurationSeconds, then divides it back out.
	EventBurst EventType = "burst"
	// EventChannel shifts the deployment-wide propagation parameters
	// (Doppler, shadowing, path loss, link budget).
	EventChannel EventType = "channel"
	// EventMove re-places the selected nodes: either all to an explicit
	// (x, y) point, or each uniformly within a region. Affected link
	// realizations are discarded and re-materialize at the new distances.
	EventMove EventType = "move"
	// EventInterference imposes a cross-network interference burst: every
	// node inside Region at the burst start suffers PenaltyDB of SNR loss
	// on all its links for DurationSeconds.
	EventInterference EventType = "interference"
	// EventSinkDown fails the base station: cluster heads keep
	// aggregating but cannot forward until the sink recovers.
	EventSinkDown EventType = "sink-down"
	// EventSinkUp returns the base station to service; forwarding resumes
	// with whatever aggregate accumulated during the outage.
	EventSinkUp EventType = "sink-up"
)

// eventTypes is the closed set of valid types.
var eventTypes = map[EventType]bool{
	EventKill: true, EventRevive: true, EventTopUp: true,
	EventSetRate: true, EventScaleRate: true, EventRampRate: true,
	EventBurst: true, EventChannel: true,
	EventMove: true, EventInterference: true,
	EventSinkDown: true, EventSinkUp: true,
}

// Selector picks a subset of node indices. The zero value selects every
// node. Otherwise the selection is the union of the explicit Indices and
// the half-open range [From, To) taken with stride Every (default 1).
type Selector struct {
	All     bool  `json:"all,omitempty"`
	Indices []int `json:"indices,omitempty"`
	From    int   `json:"from,omitempty"`
	To      int   `json:"to,omitempty"`
	Every   int   `json:"every,omitempty"`
}

// isZero reports whether the selector is the select-everything zero value.
func (s Selector) isZero() bool {
	return !s.All && len(s.Indices) == 0 && s.From == 0 && s.To == 0 && s.Every == 0
}

// Resolve returns the selected indices for a network of n nodes, sorted
// and de-duplicated. It errors on out-of-range indices or a degenerate
// range, so scenario typos fail loudly at compile time.
func (s Selector) Resolve(n int) ([]int, error) {
	if s.All || s.isZero() {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	pick := make(map[int]bool)
	for _, i := range s.Indices {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("scenario: node index %d outside [0, %d)", i, n)
		}
		pick[i] = true
	}
	if s.From != 0 || s.To != 0 || s.Every != 0 {
		every := s.Every
		if every == 0 {
			every = 1
		}
		if every < 1 {
			return nil, fmt.Errorf("scenario: selector stride %d < 1", every)
		}
		if s.From < 0 || s.To > n || s.From >= s.To {
			return nil, fmt.Errorf("scenario: selector range [%d, %d) invalid for %d nodes", s.From, s.To, n)
		}
		for i := s.From; i < s.To; i += every {
			pick[i] = true
		}
	}
	out := make([]int, 0, len(pick))
	for i := range pick {
		out = append(out, i)
	}
	sort.Ints(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: selector selects no nodes")
	}
	return out, nil
}

// ChannelShift is the parameter delta of an EventChannel: nil fields keep
// their current value.
type ChannelShift struct {
	DopplerHz        *float64 `json:"dopplerHz,omitempty"`
	ShadowingSigmaDB *float64 `json:"shadowingSigmaDB,omitempty"`
	ShadowingCorr    *float64 `json:"shadowingCorr,omitempty"`
	PathLossExponent *float64 `json:"pathLossExponent,omitempty"`
	ReferenceSNRdB   *float64 `json:"referenceSNRdB,omitempty"`
	RicianK          *float64 `json:"ricianK,omitempty"`
}

func (c ChannelShift) empty() bool {
	return c.DopplerHz == nil && c.ShadowingSigmaDB == nil && c.ShadowingCorr == nil &&
		c.PathLossExponent == nil && c.ReferenceSNRdB == nil && c.RicianK == nil
}

// Region is an axis-aligned rectangle in field coordinates (metres). Move
// events scatter nodes into it; interference events affect the nodes
// inside it. Compile checks it against the run's field dimensions.
type Region struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Width  float64 `json:"width"`
	Height float64 `json:"height"`
}

// Event is one timeline entry. Which fields apply depends on Type; the
// rest must stay zero (Validate enforces the required ones).
type Event struct {
	// AtSeconds is the absolute simulation time the event takes effect.
	AtSeconds float64 `json:"at"`
	// Type selects the event kind.
	Type EventType `json:"type"`
	// Nodes selects the affected nodes (zero value = all). Ignored by
	// channel events, which are deployment-wide.
	Nodes Selector `json:"nodes,omitzero"`

	// RatePerSecond is the set-rate value / ramp-rate target.
	RatePerSecond *float64 `json:"ratePerSecond,omitempty"`
	// FromRatePerSecond optionally pins the ramp-rate start; nil starts
	// from each node's configured base rate.
	FromRatePerSecond *float64 `json:"fromRatePerSecond,omitempty"`
	// Scale is the scale-rate / burst factor.
	Scale float64 `json:"scale,omitempty"`
	// DurationSeconds spans a ramp-rate or burst.
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
	// Steps is the ramp-rate granularity (default 8).
	Steps int `json:"steps,omitempty"`

	// EnergyJ is the topup amount or the revive charge (revive: 0 means
	// the run's initial per-node budget).
	EnergyJ float64 `json:"energyJ,omitempty"`

	// Channel carries the channel-event parameter shift.
	Channel *ChannelShift `json:"channel,omitempty"`

	// X, Y is the move-event target point (both or neither; exclusive
	// with Region).
	X *float64 `json:"x,omitempty"`
	Y *float64 `json:"y,omitempty"`
	// Region is the move-event scatter area or the interference-burst
	// footprint.
	Region *Region `json:"region,omitempty"`
	// PenaltyDB is the interference-burst SNR loss in dB.
	PenaltyDB float64 `json:"penaltyDB,omitempty"`
}

// validate checks the region's shape; position against the field happens
// at Compile time, when the field dimensions are known.
func (r Region) validate(where string) error {
	if r.Width <= 0 || r.Height <= 0 {
		return fmt.Errorf("%s: region needs positive width and height", where)
	}
	if r.X < 0 || r.Y < 0 {
		return fmt.Errorf("%s: region origin (%v, %v) outside the field", where, r.X, r.Y)
	}
	return nil
}

// NodeRule applies per-node heterogeneity at t = 0: absolute or scaled
// arrival rates and battery budgets for the selected nodes. Rules apply in
// order, so later rules override earlier ones on overlapping selections.
type NodeRule struct {
	Nodes Selector `json:"nodes,omitzero"`
	// RatePerSecond sets the selected nodes' base arrival rate.
	RatePerSecond *float64 `json:"ratePerSecond,omitempty"`
	// RateScale multiplies the selected nodes' base arrival rate
	// (applied after RatePerSecond when both are given).
	RateScale float64 `json:"rateScale,omitempty"`
	// EnergyJ sets the selected nodes' initial battery budget.
	EnergyJ *float64 `json:"energyJ,omitempty"`
	// EnergyScale multiplies the selected nodes' initial battery budget.
	EnergyScale float64 `json:"energyScale,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	// Name identifies the scenario (library lookup key).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Config optionally embeds a partial public configuration (a
	// caem.Config JSON object) applied over the defaults; the scenario
	// layer treats it as opaque so this package stays independent of the
	// public API package.
	Config json.RawMessage `json:"config,omitempty"`
	// Nodes lists per-node heterogeneity rules applied at t = 0.
	Nodes []NodeRule `json:"nodes,omitempty"`
	// Timeline lists the world events, in any order; same-time events
	// apply in listing order.
	Timeline []Event `json:"timeline,omitempty"`
}

// Load decodes a Spec from JSON, rejecting unknown fields so schema typos
// (a misspelled event field silently ignored) cannot corrupt a study.
func Load(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate reports the first structural error in the spec, or nil.
// Selector ranges are checked against the node count at Compile time,
// since the spec alone does not fix the network size.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	for i, r := range s.Nodes {
		if r.RatePerSecond == nil && r.RateScale == 0 && r.EnergyJ == nil && r.EnergyScale == 0 {
			return fmt.Errorf("scenario %q: node rule %d changes nothing", s.Name, i)
		}
		if r.RatePerSecond != nil && *r.RatePerSecond < 0 {
			return fmt.Errorf("scenario %q: node rule %d has negative rate %v", s.Name, i, *r.RatePerSecond)
		}
		if r.RateScale < 0 {
			return fmt.Errorf("scenario %q: node rule %d has negative rate scale %v", s.Name, i, r.RateScale)
		}
		if r.EnergyJ != nil && *r.EnergyJ <= 0 {
			return fmt.Errorf("scenario %q: node rule %d has non-positive energy %v", s.Name, i, *r.EnergyJ)
		}
		if r.EnergyScale < 0 {
			return fmt.Errorf("scenario %q: node rule %d has negative energy scale %v", s.Name, i, r.EnergyScale)
		}
	}
	for i, ev := range s.Timeline {
		where := fmt.Sprintf("scenario %q: timeline[%d] (%s)", s.Name, i, ev.Type)
		if !eventTypes[ev.Type] {
			return fmt.Errorf("scenario %q: timeline[%d] has unknown type %q", s.Name, i, ev.Type)
		}
		if ev.AtSeconds < 0 {
			return fmt.Errorf("%s: negative time %v", where, ev.AtSeconds)
		}
		switch ev.Type {
		case EventKill:
			// Selection only.
		case EventRevive, EventTopUp:
			if ev.EnergyJ < 0 {
				return fmt.Errorf("%s: negative energyJ %v", where, ev.EnergyJ)
			}
			if ev.Type == EventTopUp && ev.EnergyJ == 0 {
				return fmt.Errorf("%s: topup needs a positive energyJ", where)
			}
		case EventSetRate:
			if ev.RatePerSecond == nil || *ev.RatePerSecond < 0 {
				return fmt.Errorf("%s: needs a non-negative ratePerSecond", where)
			}
		case EventScaleRate:
			if ev.Scale <= 0 {
				return fmt.Errorf("%s: needs a positive scale", where)
			}
		case EventRampRate:
			if ev.RatePerSecond == nil || *ev.RatePerSecond < 0 {
				return fmt.Errorf("%s: needs a non-negative target ratePerSecond", where)
			}
			if ev.FromRatePerSecond != nil && *ev.FromRatePerSecond < 0 {
				return fmt.Errorf("%s: negative fromRatePerSecond %v", where, *ev.FromRatePerSecond)
			}
			if ev.DurationSeconds <= 0 {
				return fmt.Errorf("%s: needs a positive durationSeconds", where)
			}
			if ev.Steps < 0 {
				return fmt.Errorf("%s: negative steps %d", where, ev.Steps)
			}
		case EventBurst:
			if ev.Scale <= 0 {
				return fmt.Errorf("%s: needs a positive scale", where)
			}
			if ev.DurationSeconds <= 0 {
				return fmt.Errorf("%s: needs a positive durationSeconds", where)
			}
		case EventChannel:
			if ev.Channel == nil || ev.Channel.empty() {
				return fmt.Errorf("%s: needs a channel shift with at least one field", where)
			}
		case EventMove:
			point := ev.X != nil || ev.Y != nil
			if point && (ev.X == nil || ev.Y == nil) {
				return fmt.Errorf("%s: needs both x and y for a point target", where)
			}
			if point == (ev.Region != nil) {
				return fmt.Errorf("%s: needs exactly one of a point target (x, y) or a region", where)
			}
			if ev.Region != nil {
				if err := ev.Region.validate(where); err != nil {
					return err
				}
			}
		case EventInterference:
			if ev.Region == nil {
				return fmt.Errorf("%s: needs a region", where)
			}
			if err := ev.Region.validate(where); err != nil {
				return err
			}
			if ev.PenaltyDB <= 0 {
				return fmt.Errorf("%s: needs a positive penaltyDB", where)
			}
			if ev.DurationSeconds <= 0 {
				return fmt.Errorf("%s: needs a positive durationSeconds", where)
			}
		case EventSinkDown, EventSinkUp:
			// Deployment-wide, no parameters.
		}
	}
	return nil
}

// EventCount returns the number of declared timeline events (before ramp
// and burst expansion).
func (s Spec) EventCount() int { return len(s.Timeline) }
