package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// rec builds a distinct, fully populated record for index i.
func rec(i int) Record {
	return Record{
		Campaign: "test",
		Hash:     "deadbeef00112233",
		Scenario: "node-churn",
		Protocol: fmt.Sprintf("proto-%d", i%3),
		Seed:     uint64(i),
		Summary: Summary{
			DurationSeconds:       600,
			Rounds:                30 + i,
			TotalConsumedJ:        123.4567890123 + float64(i)/3,
			AvgRemainingJ:         0.1 * float64(i),
			AliveAtEnd:            100 - i,
			EnergyPerPacketMilliJ: 1.25 + float64(i)*0.001,
			Generated:             uint64(1000 * i),
			Delivered:             uint64(990 * i),
			DeliveryRate:          0.99,
			ThroughputKbps:        64.5,
			MeanDelayMs:           12.75,
			P95DelayMs:            40.5,
			MaxDelayMs:            99.9,
			QueueStdDev:           1.5,
			Collisions:            uint64(i),
		},
	}
}

// TestRoundTrip: Put → Close → Open must return bit-identical records,
// with order and O(1) lookups preserved across the restart.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	want := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := rec(i)
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
		r.V = recordVersion
		want = append(want, r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("Len = %d, want %d", s2.Len(), n)
	}
	if s2.RecoveredBytes() != 0 {
		t.Fatalf("clean reopen recovered %d bytes", s2.RecoveredBytes())
	}
	got, err := s2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records diverged after reopen:\n got %+v\nwant %+v", got, want)
	}
	for i := 0; i < n; i++ {
		r, ok, err := s2.Get(want[i].Key())
		if err != nil || !ok {
			t.Fatalf("Get(%v) = ok=%v err=%v", want[i].Key(), ok, err)
		}
		if !reflect.DeepEqual(r, want[i]) {
			t.Fatalf("Get(%d) diverged", i)
		}
	}
	if _, ok, _ := s2.Get(Key{Hash: "no", Scenario: "no", Protocol: "no"}); ok {
		t.Fatal("Get of absent key reported ok")
	}
}

// TestRePutLastWins: re-putting a key appends (the log stays
// append-only) but lookups and Records return the latest version.
func TestRePutLastWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := rec(1)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	r2 := r
	r2.Summary.Delivered = 4242
	if err := s.Put(r2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, err := s2.Get(r.Key())
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v", ok, err)
	}
	if got.Summary.Delivered != 4242 {
		t.Fatalf("Delivered = %d, want the re-put value 4242", got.Summary.Delivered)
	}
}

// TestTornTailRecovery: a crash mid-append leaves a partial final line;
// Open must truncate it away, report the dropped bytes, and leave the
// store appendable.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	log := filepath.Join(dir, dataFile)
	torn := []byte(`{"v":1,"hash":"deadbeef00112233","scenario":"node-ch`)
	f, err := os.OpenFile(log, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("Len after torn tail = %d, want 3", s2.Len())
	}
	if s2.RecoveredBytes() != int64(len(torn)) {
		t.Fatalf("RecoveredBytes = %d, want %d", s2.RecoveredBytes(), len(torn))
	}
	// The log itself must be truncated so the next append is clean.
	if err := s2.Put(rec(7)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 4 || s3.RecoveredBytes() != 0 {
		t.Fatalf("after recovery+append: Len=%d recovered=%d, want 4, 0", s3.Len(), s3.RecoveredBytes())
	}
}

// TestCorruptTailRecovery: a complete but undecodable line (torn write
// that happened to include a newline, bitrot) truncates from that line.
func TestCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop the index so the corrupt line is inside the scanned region.
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, dataFile), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("{not json at all}\n")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len after corrupt line = %d, want 2", s2.Len())
	}
	if s2.RecoveredBytes() == 0 {
		t.Fatal("corrupt line was not reported as recovered")
	}
}

// TestIndexRebuild: with index.json deleted, Open must rebuild the full
// index from the log alone.
func TestIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("rebuilt Len = %d, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !s2.Has(rec(i).Key()) {
			t.Fatalf("rebuilt index missing cell %d", i)
		}
	}
}

// TestStaleIndexTailScan: records appended after the last index flush
// (simulating a crash before Close) must be picked up by the tail scan.
func TestStaleIndexTailScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // index now covers 1 record
		t.Fatal(err)
	}
	if err := s.Put(rec(1)); err != nil { // beyond the flushed index
		t.Fatal(err)
	}
	// Simulate a crash: drop the handle without Close's index flush.
	s.f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (tail record lost)", s2.Len())
	}
	if !s2.Has(rec(1).Key()) {
		t.Fatal("tail-scanned record missing from index")
	}
}

// TestIndexBeyondLogIsRebuilt: an index claiming more bytes than the log
// holds (log truncated externally) must be discarded, not trusted.
func TestIndexBeyondLogIsRebuilt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the log to its first two lines, keeping the stale index.
	blob, err := os.ReadFile(filepath.Join(dir, dataFile))
	if err != nil {
		t.Fatal(err)
	}
	cut, lines := 0, 0
	for i, b := range blob {
		if b == '\n' {
			lines++
			if lines == 2 {
				cut = i + 1
				break
			}
		}
	}
	if err := os.WriteFile(filepath.Join(dir, dataFile), blob[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after external truncation", s2.Len())
	}
}

// TestCampaignBlobs: campaign specs round-trip and enumerate.
func TestCampaignBlobs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutCampaign("camp-b", []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCampaign("camp-a", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	ids, err := s.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"camp-a", "camp-b"}) {
		t.Fatalf("Campaigns = %v", ids)
	}
	blob, err := s.GetCampaign("camp-a")
	if err != nil || string(blob) != `{"a":1}` {
		t.Fatalf("GetCampaign = %q, %v", blob, err)
	}
	if _, err := s.GetCampaign("absent"); err == nil {
		t.Fatal("GetCampaign of absent id succeeded")
	}
}

// TestPutRejectsEmptyKey: structural key validation fails loudly.
func TestPutRejectsEmptyKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(Record{Scenario: "x", Protocol: "y"}); err == nil {
		t.Fatal("Put with empty hash succeeded")
	}
}

// TestKeyEscaping: metacharacters in key fields cannot alias another key.
func TestKeyEscaping(t *testing.T) {
	a := Key{Hash: "h", Scenario: "a/b", Protocol: "c", Seed: 1}
	b := Key{Hash: "h", Scenario: "a", Protocol: "b/c", Seed: 1}
	if a.String() == b.String() {
		t.Fatalf("keys alias: %q", a.String())
	}
}
