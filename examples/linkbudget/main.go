// Link budget: the analytic view of CAEM's premise, checked against the
// simulator. For a range of sensor-to-head distances, the closed-form
// Rayleigh model predicts how often each ABICM class is admissible, how
// long a node waits for the 2 Mbps class, and what fraction of transmit
// energy waiting saves; a full network simulation then shows the realized
// protocol-level saving (which also pays for signaling, startups, and
// collisions).
//
//	go run ./examples/linkbudget
package main

import (
	"fmt"
	"log"

	"repro/caem"
)

func main() {
	cfg := caem.DefaultConfig()

	fmt.Println("analytic link budget (Rayleigh fading, Table II modes):")
	fmt.Println()
	for _, d := range []float64{10, 20, 30, 45, 60} {
		pred, err := caem.PredictLink(cfg, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(pred.Summary())
		fmt.Println()
	}

	fmt.Println("simulated protocol-level saving at the same operating point:")
	cfg.Nodes = 60
	cfg.DurationSeconds = 150
	results, err := caem.RunComparison(cfg, caem.PureLEACH, caem.Scheme2)
	if err != nil {
		log.Fatal(err)
	}
	leach, s2 := results[0], results[1]
	fmt.Printf("  pure-LEACH   %.3f mJ/packet\n", leach.EnergyPerPacketMilliJ)
	fmt.Printf("  CAEM-scheme2 %.3f mJ/packet  (saving %.0f%%)\n",
		s2.EnergyPerPacketMilliJ, 100*(1-s2.EnergyPerPacketMilliJ/leach.EnergyPerPacketMilliJ))
	fmt.Println()
	fmt.Println("the simulated saving sits below the per-link analytic bound: the")
	fmt.Println("protocol also pays for tone signaling, radio startups, receive-side")
	fmt.Println("energy, and contention — the costs the paper's simulation quantifies.")
}
