package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Stream accumulates sample statistics for replicated experiments:
// unbiased dispersion and Student-t confidence intervals.
func ExampleStream() {
	var s stats.Stream
	for _, v := range []float64{10, 11, 12, 13} {
		s.Add(v)
	}
	fmt.Printf("n=%d mean=%.2f sd=%.3f ci95=%.3f\n", s.Count(), s.Mean(), s.SampleStdDev(), s.CI95())
	// Output:
	// n=4 mean=11.50 sd=1.291 ci95=2.054
}

// Welford tracks population mean/variance with min/max, allocation-free
// — the base of every simulation metric.
func ExampleWelford() {
	var w stats.Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	fmt.Printf("mean=%.1f variance=%.1f min=%.0f max=%.0f\n", w.Mean(), w.Variance(), w.Min(), w.Max())
	// Output:
	// mean=5.0 variance=4.0 min=2 max=9
}

// Quantile is the P² estimator: any single quantile in O(1) memory.
func ExampleQuantile() {
	q := stats.NewQuantile(0.95)
	for v := 1; v <= 100; v++ {
		q.Add(float64(v))
	}
	fmt.Printf("p95 of 1..100 ~ %.0f (from %d observations)\n", q.Value(), q.Count())
	// Output:
	// p95 of 1..100 ~ 95 (from 100 observations)
}

// A single-replicate sample carries no dispersion information: the
// sample statistics are NaN, never a misleading zero.
func ExampleStream_nanPolicy() {
	var s stats.Stream
	s.Add(42)
	fmt.Printf("mean=%.0f sd=%.0f ci95=%.0f\n", s.Mean(), s.SampleStdDev(), s.CI95())
	// Output:
	// mean=42 sd=NaN ci95=NaN
}
