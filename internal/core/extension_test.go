package core

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/sim"
)

// The base-station forwarding extension must move aggregated bits, cost
// the heads energy, and leave the protocol-level metrics otherwise sane.
func TestBaseStationForwarding(t *testing.T) {
	cfg := testConfig()
	cfg.BaseStationForwarding = true
	r := New(cfg).Run()
	if r.ForwardedBits == 0 {
		t.Fatal("forwarding enabled but no bits reached the base station")
	}
	if r.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	// The aggregate is a compression of delivered payload: forwarded bits
	// must stay below delivered payload x ratio (some residue is pending
	// at round boundaries).
	maxAgg := float64(r.Delivered) * float64(cfg.PacketSizeBits) * cfg.AggregationRatio
	if float64(r.ForwardedBits) > maxAgg+1 {
		t.Fatalf("forwarded %d bits exceeds aggregate bound %.0f", r.ForwardedBits, maxAgg)
	}
	if float64(r.ForwardedBits) < 0.5*maxAgg {
		t.Fatalf("forwarded only %d of ~%.0f aggregate bits", r.ForwardedBits, maxAgg)
	}
}

// With forwarding off (the paper's setting), no aggregate moves.
func TestForwardingOffByDefault(t *testing.T) {
	r := New(testConfig()).Run()
	if r.ForwardedBits != 0 {
		t.Fatalf("forwarding disabled but %d bits forwarded", r.ForwardedBits)
	}
}

// Forwarding consumes head energy — but the total-energy inequality is
// only robust when the forwarding airtime dominates. Forwarding also
// occupies the data channel, and members defer while it does, saving
// their own transmit/collision energy; at the default AggregationRatio
// (0.1) those second-order savings are the same magnitude as the heads'
// forwarding cost (the gap was ~0.3% of total consumption at the seed
// commit, and its sign depends on the channel realization — the
// coherence-block fading model flipped it). The test therefore raises
// the ratio to 0.5 so the first-order cost dominates and the assertion
// tests the mechanism rather than realization noise.
func TestForwardingCostsEnergy(t *testing.T) {
	cfg := testConfig()
	cfg.AggregationRatio = 0.5
	off := New(cfg).Run()
	cfg.BaseStationForwarding = true
	on := New(cfg).Run()
	if on.TotalConsumedJ <= off.TotalConsumedJ {
		t.Fatalf("forwarding run consumed %.2f J, base run %.2f J", on.TotalConsumedJ, off.TotalConsumedJ)
	}
}

func TestForwardingConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.BaseStationForwarding = true
	cfg.ForwardInterval = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero ForwardInterval accepted")
	}
	cfg = testConfig()
	cfg.BaseStationForwarding = true
	cfg.AggregationRatio = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("AggregationRatio > 1 accepted")
	}
}

// Failure injection: kill the first round's cluster heads mid-round by
// draining their batteries directly, and verify the network recovers at
// the next election (members re-cluster, traffic keeps flowing).
func TestHeadDeathRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.Horizon = 80 * sim.Second
	net := New(cfg)

	var killedAt sim.Time = 5 * sim.Second
	var killed []int
	net.eng.Schedule(killedAt, func() {
		for _, cl := range net.clusters {
			h := cl.head
			killed = append(killed, h.idx)
			// Drain the head's battery; the next draw kills it, and the
			// cluster must collapse cleanly.
			h.battery.Draw(net.eng.Now(), energy.Baseline, h.battery.Remaining()-1e-9)
		}
	})
	r := net.Run()

	if len(killed) == 0 {
		t.Fatal("injection did not run")
	}
	for _, idx := range killed {
		if !r.Nodes[idx].Dead {
			t.Errorf("injected head %d still alive", idx)
		}
	}
	if r.AliveAtEnd != cfg.Nodes-len(killed) {
		t.Fatalf("alive %d, want %d (only injected heads die)", r.AliveAtEnd, cfg.Nodes-len(killed))
	}
	// Traffic must keep flowing after the collapse: packets delivered in
	// the remaining rounds far outnumber the pre-kill seconds' worth.
	if r.Delivered < r.Generated/2 {
		t.Fatalf("delivery collapsed after head deaths: %d/%d", r.Delivered, r.Generated)
	}
}

// Forwarding + head death: the extension's pending events must not fire on
// collapsed clusters (this exercises the gen/collapse guards).
func TestForwardingSurvivesHeadDeath(t *testing.T) {
	cfg := testConfig()
	cfg.BaseStationForwarding = true
	cfg.Horizon = 80 * sim.Second
	net := New(cfg)
	net.eng.Schedule(5*sim.Second, func() {
		for _, cl := range net.clusters {
			cl.head.battery.Draw(net.eng.Now(), energy.Baseline, cl.head.battery.Remaining()-1e-9)
		}
	})
	r := net.Run()
	if r.ForwardedBits == 0 {
		t.Fatal("no forwarding after recovery rounds")
	}
}
