package caem

import (
	"repro/internal/obs"
)

// Metric families owned by the campaign-store aggregate cache. One
// update per CachedAggregates call or cell write — never on a
// simulation hot path.
const (
	metricAggCacheHits         = "caem_agg_cache_hits_total"
	metricAggCacheMisses       = "caem_agg_cache_misses_total"
	metricAggCacheInvalidation = "caem_agg_cache_invalidations_total"
)

// aggCacheMetrics holds the aggregate-cache instrument handles. A nil
// *aggCacheMetrics is valid and inert, so an unobserved store pays one
// nil check per hook and nothing else.
type aggCacheMetrics struct {
	hits          *obs.Counter
	misses        *obs.Counter
	invalidations *obs.Counter
}

// RegisterAggCacheMetrics registers the aggregate-cache metric families
// on reg and returns the handles. Idempotent; also the catalog surface
// used by the obs-check lint.
func RegisterAggCacheMetrics(reg *obs.Registry) *aggCacheMetrics {
	return &aggCacheMetrics{
		hits: reg.Counter(metricAggCacheHits,
			"Materialized-aggregate reads served from cache without touching the store."),
		misses: reg.Counter(metricAggCacheMisses,
			"Materialized-aggregate reads that recomputed from stored cells."),
		invalidations: reg.Counter(metricAggCacheInvalidation,
			"Aggregate-cache invalidations caused by cell writes."),
	}
}

func (m *aggCacheMetrics) hit() {
	if m == nil {
		return
	}
	m.hits.Inc()
}

func (m *aggCacheMetrics) miss() {
	if m == nil {
		return
	}
	m.misses.Inc()
}

func (m *aggCacheMetrics) invalidated() {
	if m == nil {
		return
	}
	m.invalidations.Inc()
}
