package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDefaultDeviceModelValid(t *testing.T) {
	if err := DefaultDeviceModel().Validate(); err != nil {
		t.Fatalf("default device model invalid: %v", err)
	}
}

func TestDeviceModelValidateRejects(t *testing.T) {
	cases := []func(*DeviceModel){
		func(d *DeviceModel) { d.DataTxPower = -1 },
		func(d *DeviceModel) { d.ToneRxPower = -0.001 },
		func(d *DeviceModel) { d.DataStartupTime = -1 },
		func(d *DeviceModel) { d.DataSleepPower = 1; d.DataIdleListenPower = 0.5 },
	}
	for i, mutate := range cases {
		d := DefaultDeviceModel()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPowerOrdering(t *testing.T) {
	d := DefaultDeviceModel()
	if !(d.DataTxPower > d.DataRxPower && d.DataRxPower > d.DataIdleListenPower && d.DataIdleListenPower > d.DataSleepPower) {
		t.Fatal("data radio power states not ordered tx > rx > idle-listen > sleep")
	}
	if d.ToneRxPower >= d.DataRxPower {
		t.Fatal("tone monitoring must be far cheaper than data reception (wake-up-receiver class)")
	}
}

func TestStartupEnergy(t *testing.T) {
	d := DefaultDeviceModel()
	want := d.DataStartupPower * d.DataStartupTime.Seconds()
	if got := d.StartupEnergy(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("StartupEnergy = %v, want %v", got, want)
	}
}

func TestBatteryDraw(t *testing.T) {
	b := NewBattery(10)
	if b.Initial() != 10 || b.Remaining() != 10 || b.Consumed() != 0 {
		t.Fatal("fresh battery state wrong")
	}
	if !b.Draw(0, DataTx, 4) {
		t.Fatal("draw within budget returned false")
	}
	if b.Remaining() != 6 || b.Consumed() != 4 {
		t.Fatalf("after draw: remaining %v consumed %v", b.Remaining(), b.Consumed())
	}
	if b.ConsumedBy(DataTx) != 4 {
		t.Fatalf("ConsumedBy(DataTx) = %v", b.ConsumedBy(DataTx))
	}
}

func TestBatteryExhaustion(t *testing.T) {
	b := NewBattery(1)
	at := 5 * sim.Second
	if b.Draw(at, DataTx, 2) {
		t.Fatal("overdraft returned true")
	}
	if !b.Dead() {
		t.Fatal("battery not dead after overdraft")
	}
	if b.DiedAt() != at {
		t.Fatalf("DiedAt = %v, want %v", b.DiedAt(), at)
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining %v after death, want 0", b.Remaining())
	}
	// The truncated draw is still accounted (the whole remaining Joule).
	if b.ConsumedBy(DataTx) != 1 {
		t.Fatalf("ConsumedBy = %v, want 1", b.ConsumedBy(DataTx))
	}
	// Draws on a dead battery are no-ops.
	if b.Draw(at+1, DataRx, 0.5) {
		t.Fatal("draw on dead battery returned true")
	}
	if b.ConsumedBy(DataRx) != 0 {
		t.Fatal("dead battery accumulated energy")
	}
}

func TestExactExhaustionIsDead(t *testing.T) {
	b := NewBattery(1)
	if b.Draw(0, Baseline, 1) {
		t.Fatal("draw of exactly the remaining energy should report death")
	}
	if !b.Dead() {
		t.Fatal("battery should be dead at exactly zero")
	}
}

func TestDrawPower(t *testing.T) {
	b := NewBattery(10)
	b.DrawPower(0, DataRx, 0.5, 2*sim.Second)
	if math.Abs(b.ConsumedBy(DataRx)-1.0) > 1e-12 {
		t.Fatalf("DrawPower consumed %v, want 1", b.ConsumedBy(DataRx))
	}
}

func TestNegativeDrawPanics(t *testing.T) {
	b := NewBattery(1)
	defer func() {
		if recover() == nil {
			t.Error("negative draw did not panic")
		}
	}()
	b.Draw(0, DataTx, -1)
}

func TestNegativeDurationPanics(t *testing.T) {
	b := NewBattery(1)
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	b.DrawPower(0, DataTx, 1, -sim.Second)
}

func TestNonPositiveBatteryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBattery(0) did not panic")
		}
	}()
	NewBattery(0)
}

func TestBreakdownSortedAndComplete(t *testing.T) {
	b := NewBattery(100)
	b.Draw(0, DataTx, 5)
	b.Draw(0, DataRx, 10)
	b.Draw(0, Baseline, 1)
	bd := b.Breakdown()
	if len(bd) != 3 {
		t.Fatalf("breakdown has %d entries, want 3", len(bd))
	}
	for i := 1; i < len(bd); i++ {
		if bd[i].Joules > bd[i-1].Joules {
			t.Fatal("breakdown not sorted descending")
		}
	}
	var sum float64
	for _, ce := range bd {
		sum += ce.Joules
	}
	if math.Abs(sum-b.Consumed()) > 1e-12 {
		t.Fatalf("breakdown sums to %v, consumed %v", sum, b.Consumed())
	}
}

func TestCauseNames(t *testing.T) {
	for _, c := range Causes() {
		if c.String() == "" || c.String()[0] == 'C' { // "Cause(n)" fallback
			t.Errorf("cause %d has no name", int(c))
		}
	}
}

// Property: for any sequence of draws, initial = remaining + consumed and
// consumed equals the sum over causes (conservation of energy).
func TestConservationProperty(t *testing.T) {
	check := func(draws []float64) bool {
		b := NewBattery(1000)
		for i, d := range draws {
			amt := math.Abs(d)
			if math.IsNaN(amt) || math.IsInf(amt, 0) {
				continue
			}
			amt = math.Mod(amt, 50)
			b.Draw(sim.Time(i), Cause(i%int(numCauses)), amt)
		}
		var byCause float64
		for _, c := range Causes() {
			byCause += b.ConsumedBy(c)
		}
		return math.Abs(b.Remaining()+b.Consumed()-1000) < 1e-9 &&
			math.Abs(byCause-b.Consumed()) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
