package caem

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/queueing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Protocol selects the energy-management variant under test.
type Protocol int

const (
	// PureLEACH is the non-channel-adaptive baseline.
	PureLEACH Protocol = iota
	// Scheme1 is CAEM with adaptive threshold adjustment.
	Scheme1
	// Scheme2 is CAEM with the threshold fixed at the highest class.
	Scheme2
)

// Protocols returns all variants in presentation order (baseline first).
func Protocols() []Protocol { return []Protocol{PureLEACH, Scheme1, Scheme2} }

func (p Protocol) String() string {
	switch p {
	case PureLEACH:
		return "pure-LEACH"
	case Scheme1:
		return "CAEM-scheme1"
	case Scheme2:
		return "CAEM-scheme2"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol resolves a protocol name as used by the CLI flags and
// scenario files. It accepts the canonical String() forms and the common
// short aliases, case-insensitively: "leach" | "pure-leach" | "none",
// "scheme1" | "s1" | "adaptive", "scheme2" | "s2" | "fixed".
func ParseProtocol(s string) (Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "leach", "pure-leach", "pureleach", "none":
		return PureLEACH, nil
	case "scheme1", "s1", "adaptive", "caem-scheme1":
		return Scheme1, nil
	case "scheme2", "s2", "fixed", "caem-scheme2":
		return Scheme2, nil
	default:
		return 0, fmt.Errorf("caem: unknown protocol %q (want leach, scheme1, or scheme2)", s)
	}
}

// MarshalText encodes the protocol as its canonical name, making Config
// JSON files human-readable ("CAEM-scheme1" instead of 1).
func (p Protocol) MarshalText() ([]byte, error) {
	switch p {
	case PureLEACH, Scheme1, Scheme2:
		return []byte(p.String()), nil
	default:
		return nil, fmt.Errorf("caem: cannot marshal unknown protocol %d", int(p))
	}
}

// UnmarshalText decodes any spelling ParseProtocol accepts.
func (p *Protocol) UnmarshalText(text []byte) error {
	v, err := ParseProtocol(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p Protocol) policy() (queueing.ThresholdPolicy, error) {
	switch p {
	case PureLEACH:
		return queueing.PolicyNone, nil
	case Scheme1:
		return queueing.PolicyAdaptive, nil
	case Scheme2:
		return queueing.PolicyFixedHighest, nil
	default:
		return 0, fmt.Errorf("caem: unknown protocol %d", int(p))
	}
}

// Advanced exposes the less commonly varied model parameters. The zero
// value of any field means "use the paper default" (DESIGN.md §4).
type Advanced struct {
	// RoundLengthSeconds is the LEACH round duration.
	RoundLengthSeconds float64 `json:"roundLengthSeconds,omitempty"`
	// HeadFraction is LEACH's P, the expected cluster-head fraction.
	HeadFraction float64 `json:"headFraction,omitempty"`
	// DopplerHz scales the microscopic fading rate (channel coherence
	// time ≈ 9/(16π·Doppler)).
	DopplerHz float64 `json:"dopplerHz,omitempty"`
	// ShadowingSigmaDB is the log-normal shadowing spread. Negative
	// disables shadowing entirely.
	ShadowingSigmaDB float64 `json:"shadowingSigmaDB,omitempty"`
	// PathLossExponent is the log-distance path loss slope.
	PathLossExponent float64 `json:"pathLossExponent,omitempty"`
	// ReferenceSNRdB is the link budget: mean SNR at 10 m.
	ReferenceSNRdB float64 `json:"referenceSNRdB,omitempty"`
	// QueueThreshold is Scheme 1's Q_th activation level.
	QueueThreshold int `json:"queueThreshold,omitempty"`
	// SampleEvery is Scheme 1's m (queue sampled every m arrivals).
	SampleEvery int `json:"sampleEvery,omitempty"`
	// MinBurst / MaxBurst bound the packets per transmission.
	MinBurst int `json:"minBurst,omitempty"`
	MaxBurst int `json:"maxBurst,omitempty"`
	// MaxRetries caps per-packet retransmissions.
	MaxRetries int `json:"maxRetries,omitempty"`
	// StartupTimeMicros is the data radio's sleep→active time.
	StartupTimeMicros float64 `json:"startupTimeMicros,omitempty"`
	// BaseStationForwarding enables the paper's base-station forwarding
	// extension: cluster heads aggregate and periodically forward to the
	// sink, and sink-down scenario events become metric-visible.
	BaseStationForwarding bool `json:"baseStationForwarding,omitempty"`
}

// Config parameterizes one simulation run. DefaultConfig returns the
// paper's Table II operating point.
//
// Config round-trips through JSON: scenario files (see Scenario) embed a
// partial Config object as overrides, and a marshalled-then-unmarshalled
// Config produces a bit-identical run. The TraceCSV writer is the one
// runtime-only field and is excluded from serialization.
type Config struct {
	// Protocol is the variant under test.
	Protocol Protocol `json:"protocol,omitempty"`
	// Seed makes the run reproducible; equal seeds give identical runs.
	Seed uint64 `json:"seed,omitempty"`
	// Nodes is the network size.
	Nodes int `json:"nodes,omitempty"`
	// FieldWidthM and FieldHeightM give the deployment area in meters.
	FieldWidthM  float64 `json:"fieldWidthM,omitempty"`
	FieldHeightM float64 `json:"fieldHeightM,omitempty"`
	// TrafficLoad is the per-node Poisson packet rate (the paper's
	// "added traffic load", packets/second).
	TrafficLoad float64 `json:"trafficLoad,omitempty"`
	// PacketSizeBits is the information payload per packet.
	PacketSizeBits int `json:"packetSizeBits,omitempty"`
	// BufferCapacity is the per-node queue limit in packets
	// (0 = unbounded, as the paper's fairness experiment uses).
	BufferCapacity int `json:"bufferCapacity,omitempty"`
	// InitialEnergyJ is the per-node battery budget.
	InitialEnergyJ float64 `json:"initialEnergyJ,omitempty"`
	// DurationSeconds bounds simulated time.
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
	// StopWhenNetworkDead ends the run once 80% of nodes are exhausted
	// (the network-lifetime event) instead of running to the horizon.
	StopWhenNetworkDead bool `json:"stopWhenNetworkDead,omitempty"`
	// SampleIntervalSeconds sets the metric time-series cadence.
	SampleIntervalSeconds float64 `json:"sampleIntervalSeconds,omitempty"`
	// Advanced optionally overrides deeper model parameters.
	Advanced Advanced `json:"advanced,omitzero"`
	// TraceCSV, when non-nil, receives the full protocol event stream
	// (rounds, bursts, deliveries, collisions, drops, deferrals, deaths)
	// as CSV rows while the simulation runs. Expect millions of rows for
	// saturated full-scale runs. Never serialized.
	TraceCSV io.Writer `json:"-"`
	// Workers bounds the concurrency of the multi-run entry points
	// (RunComparison, RunSeeds, RunCampaign): 0 means one worker per CPU,
	// 1 forces serial execution — results are bit-identical either way.
	// Callers that parallelize at a higher level should set 1 to avoid
	// oversubscription. Run ignores it (a single run is single-threaded).
	Workers int `json:"workers,omitempty"`
}

// DefaultConfig returns the paper's simulation parameters (Table II):
// 100 nodes on a 100 m × 100 m field, 2 Kbit packets at 5 pkt/s, 50-packet
// buffers, 10 J batteries, Scheme 1.
func DefaultConfig() Config {
	return Config{
		Protocol:              Scheme1,
		Seed:                  1,
		Nodes:                 100,
		FieldWidthM:           100,
		FieldHeightM:          100,
		TrafficLoad:           5,
		PacketSizeBits:        2000,
		BufferCapacity:        50,
		InitialEnergyJ:        10,
		DurationSeconds:       600,
		SampleIntervalSeconds: 5,
	}
}

func (c Config) simConfig() (core.Config, error) {
	policy, err := c.Protocol.policy()
	if err != nil {
		return core.Config{}, err
	}
	sc := core.DefaultConfig()
	sc.Seed = c.Seed
	sc.Nodes = c.Nodes
	sc.FieldWidth = c.FieldWidthM
	sc.FieldHeight = c.FieldHeightM
	sc.Policy = policy
	sc.ArrivalRatePerSecond = c.TrafficLoad
	sc.PacketSizeBits = c.PacketSizeBits
	sc.BufferCapacity = c.BufferCapacity
	sc.InitialEnergyJ = c.InitialEnergyJ
	sc.Horizon = sim.FromSeconds(c.DurationSeconds)
	sc.StopWhenNetworkDead = c.StopWhenNetworkDead
	if c.SampleIntervalSeconds > 0 {
		sc.SampleInterval = sim.FromSeconds(c.SampleIntervalSeconds)
	}

	a := c.Advanced
	if a.RoundLengthSeconds > 0 {
		sc.RoundLength = sim.FromSeconds(a.RoundLengthSeconds)
	}
	if a.HeadFraction > 0 {
		sc.HeadFraction = a.HeadFraction
	}
	if a.DopplerHz > 0 {
		sc.Channel.DopplerHz = a.DopplerHz
	}
	if a.ShadowingSigmaDB > 0 {
		sc.Channel.ShadowingSigmaDB = a.ShadowingSigmaDB
	} else if a.ShadowingSigmaDB < 0 {
		sc.Channel.ShadowingSigmaDB = 0
	}
	if a.PathLossExponent > 0 {
		sc.Channel.PathLossExponent = a.PathLossExponent
	}
	if a.ReferenceSNRdB > 0 {
		sc.Channel.ReferenceSNRdB = a.ReferenceSNRdB
	}
	if a.QueueThreshold > 0 {
		sc.Adjust.QueueThreshold = a.QueueThreshold
	}
	if a.SampleEvery > 0 {
		sc.Adjust.SampleEvery = a.SampleEvery
	}
	if a.MinBurst > 0 {
		sc.MAC.MinBurst = a.MinBurst
	}
	if a.MaxBurst > 0 {
		sc.MAC.MaxBurst = a.MaxBurst
	}
	if a.MaxRetries > 0 {
		sc.MAC.MaxRetries = a.MaxRetries
	}
	if a.StartupTimeMicros > 0 {
		sc.Device.DataStartupTime = sim.Time(a.StartupTimeMicros + 0.5)
	}
	sc.BaseStationForwarding = a.BaseStationForwarding
	return sc, nil
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	sc, err := c.simConfig()
	if err != nil {
		return err
	}
	return sc.Validate()
}

// Run executes one simulation and returns its results.
func Run(c Config) (Result, error) {
	return runPooled(nil, c)
}

// runPooled resolves and executes one configuration, on the given
// resident context pool when non-nil (the multi-run entry points hand
// each worker its own) or on a fresh context otherwise.
func runPooled(p *runner.Pool, c Config) (Result, error) {
	sc, err := c.simConfig()
	if err != nil {
		return Result{}, err
	}
	return runSim(p, c, sc)
}

// runSim validates and executes one resolved core configuration, wiring
// the optional trace stream. Shared by Run, RunScenario, and the pooled
// grid entry points (pool may be nil for a one-shot context).
func runSim(p *runner.Pool, c Config, sc core.Config) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	var traceErr func() error
	if c.TraceCSV != nil {
		sc.Trace, traceErr = trace.StreamCSV(c.TraceCSV)
	}
	var res core.Result
	if p != nil {
		res = p.Run(sc)
	} else {
		res = core.New(sc).Run()
	}
	pub := publicResult(c, res)
	if traceErr != nil {
		if err := traceErr(); err != nil {
			return pub, fmt.Errorf("caem: trace stream failed: %w", err)
		}
	}
	return pub, nil
}

// RunComparison runs the same configuration under each protocol (same
// seed, same topology, same channel realizations) and returns the results
// keyed in Protocols() order. This is the paper's core experimental
// pattern: hold everything fixed, vary only the energy-management policy.
//
// The runs are independent, so they execute in parallel per
// Config.Workers unless a trace writer is attached — trace streams are
// sequential by nature, so tracing forces the legacy serial order.
func RunComparison(c Config, protocols ...Protocol) ([]Result, error) {
	if len(protocols) == 0 {
		protocols = Protocols()
	}
	workers := c.Workers
	if c.TraceCSV != nil {
		workers = 1
	}
	return runVariants(workers, len(protocols),
		func(i int) string { return protocols[i].String() },
		func(p *runner.Pool, i int) (Result, error) {
			cc := c
			cc.Protocol = protocols[i]
			return runPooled(p, cc)
		})
}

// runVariants executes n independent variants through the worker pool,
// handing every worker a resident context pool so grid cells reuse
// simulation state instead of rebuilding the world per cell. When the
// effective worker count is 1 (requested, or forced by tracing) the
// variants run serially on one pool and the first failure
// short-circuits the rest; in parallel mode every variant completes and
// the lowest-indexed error wins. A panicking variant re-raises on the
// caller with its description.
func runVariants(workers, n int, describe func(int) string, run func(p *runner.Pool, i int) (Result, error)) ([]Result, error) {
	if runner.EffectiveWorkers(workers, n) == 1 {
		pool := runner.NewPool()
		out := make([]Result, 0, n)
		for i := 0; i < n; i++ {
			r, err := run(pool, i)
			if err != nil {
				return nil, fmt.Errorf("caem: %s run failed: %w", describe(i), err)
			}
			out = append(out, r)
		}
		return out, nil
	}
	out := make([]Result, n)
	errs := make([]error, n)
	if i, v := runner.DoPooled(workers, n, func(p *runner.Pool, i int) {
		out[i], errs[i] = run(p, i)
	}); i >= 0 {
		panic(fmt.Sprintf("caem: %s run panicked: %v", describe(i), v))
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("caem: %s run failed: %w", describe(i), err)
		}
	}
	return out, nil
}

// RunSeeds runs the same configuration across the given seeds — the
// replication pattern behind every error bar in the evaluation — fanned
// out over the worker pool per Config.Workers. Results come back in seed
// order and are bit-identical to serial runs. Tracing is incompatible
// with replication: each run would interleave on the one writer.
func RunSeeds(c Config, seeds []uint64) ([]Result, error) {
	if c.TraceCSV != nil {
		return nil, fmt.Errorf("caem: RunSeeds cannot stream traces from %d concurrent runs; run seeds individually", len(seeds))
	}
	return runVariants(c.Workers, len(seeds),
		func(i int) string { return fmt.Sprintf("seed %d", seeds[i]) },
		func(p *runner.Pool, i int) (Result, error) {
			cc := c
			cc.Seed = seeds[i]
			return runPooled(p, cc)
		})
}
