package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func fp(v float64) *float64 { return &v }

// dynamicWorldSpec is the stress timeline DynamicWorld subjects every
// protocol to. Times are fractions of the horizon so the scenario scales
// with Options.Scale: a hotspot cluster from t = 0, a churn dip (10% of
// the field fails, later repaired), a network-wide traffic burst, a
// fading storm through the third quarter, and a battery top-up of the
// hotspot near the end.
func dynamicWorldSpec(nodes int, horizon sim.Time) scenario.Spec {
	at := func(frac float64) float64 { return horizon.Seconds() * frac }
	hotspot := scenario.Selector{From: 0, To: nodes / 10}
	churned := scenario.Selector{From: nodes / 10, To: nodes / 5}
	return scenario.Spec{
		Name:        "dynamic-world",
		Description: "hotspot + churn + burst + fading storm + battery service",
		Nodes: []scenario.NodeRule{
			{Nodes: hotspot, RateScale: 4},
		},
		Timeline: []scenario.Event{
			{AtSeconds: at(0.2), Type: scenario.EventKill, Nodes: churned},
			{AtSeconds: at(0.3), Type: scenario.EventBurst, Scale: 3, DurationSeconds: at(0.1)},
			{AtSeconds: at(0.5), Type: scenario.EventChannel, Channel: &scenario.ChannelShift{
				DopplerHz:        fp(10),
				ShadowingSigmaDB: fp(8),
			}},
			{AtSeconds: at(0.6), Type: scenario.EventRevive, Nodes: churned},
			{AtSeconds: at(0.75), Type: scenario.EventChannel, Channel: &scenario.ChannelShift{
				DopplerHz:        fp(2),
				ShadowingSigmaDB: fp(4),
			}},
			{AtSeconds: at(0.8), Type: scenario.EventTopUp, Nodes: hotspot, EnergyJ: 2},
		},
	}
}

// DynamicWorld compares the three protocols under a dynamic world — the
// conditions CAEM was designed for but the paper never evaluates: a
// standing hotspot, node churn, a traffic burst, and a mid-run fading
// storm. The static paper setup orders the protocols by energy frugality
// (Scheme 2 < Scheme 1 < LEACH consumption); this experiment shows
// whether that ordering survives when the world moves underneath them.
// Every cell aggregates the seed replicates as mean ± 95% CI, so the
// ordering verdict is a statistical statement rather than one
// realization's anecdote.
func DynamicWorld(opts Options) Report {
	horizon := opts.horizon(600 * sim.Second)
	spec := dynamicWorldSpec(opts.nodes(), horizon)

	cells := make([]runner.Job, 0, 3)
	for _, pc := range protocolCases() {
		cfg := opts.baseConfig()
		cfg.Policy = pc.policy
		cfg.Horizon = horizon
		// Compile per cell: each cell needs its own World slice (the
		// closures are stateless and shareable, but appending to a shared
		// cfg.World across cells would double-apply events).
		if err := scenario.Compile(spec, &cfg); err != nil {
			panic(fmt.Sprintf("experiment: dynamic-world spec failed to compile: %v", err))
		}
		cells = append(cells, runner.Job{Label: "dynamicworld/" + pc.name, Config: cfg})
	}
	reps := opts.runReplicated(cells)

	consumed := func(r core.Result) float64 { return r.TotalConsumedJ }
	tab := Table{Headers: []string{"protocol", "consumed(J)", "delivered", "delivery", "delay(ms)", "alive-at-end", "deferrals-csi", "collisions"}}
	for i, pc := range protocolCases() {
		rep := reps[i]
		tab.AddRow(pc.name,
			rep.cell(f2, consumed),
			rep.cell(f0, func(r core.Result) float64 { return float64(r.Delivered) }),
			rep.cell(pct, func(r core.Result) float64 { return r.DeliveryRate }),
			rep.cell(f1, func(r core.Result) float64 { return r.MeanDelayMs }),
			rep.cell(f0, func(r core.Result) float64 { return float64(r.AliveAtEnd) }),
			rep.cell(f0, func(r core.Result) float64 { return float64(r.MAC.DeferralsCSI) }),
			rep.cell(f0, func(r core.Result) float64 { return float64(r.CollisionEvents) }),
		)
	}

	notes := []string{
		fmt.Sprintf("world: %s over %.0f s (%d declared events); %s",
			spec.Description, horizon.Seconds(), len(spec.Timeline), repNote(opts)),
	}
	leach, s1, s2 := reps[0], reps[1], reps[2]
	if s1.mean(consumed) < leach.mean(consumed) && s2.mean(consumed) < leach.mean(consumed) {
		notes = append(notes, fmt.Sprintf(
			"the paper's static-world energy ordering survives the dynamic world: Scheme1 %.1f J and Scheme2 %.1f J vs pure LEACH %.1f J (replicate means)",
			s1.mean(consumed), s2.mean(consumed), leach.mean(consumed)))
	} else {
		notes = append(notes, "the static-world energy ordering did NOT survive the dynamic world — investigate")
	}
	deliveryOf := func(rep replicates) string {
		return ciString(rep.stream(func(r core.Result) float64 { return r.DeliveryRate }), pct)
	}
	notes = append(notes, fmt.Sprintf(
		"delivery under stress: pure-LEACH %s, Scheme1 %s, Scheme2 %s (CSI gating defers transmissions during the fading storm)",
		deliveryOf(leach), deliveryOf(s1), deliveryOf(s2)))

	return Report{
		ID:    "dynamicworld",
		Title: "Protocol comparison under a dynamic world (hotspot, churn, burst, fading storm)",
		Table: tab,
		Notes: notes,
		Charts: []plot.Chart{
			{
				Title:  "Dynamic world — nodes alive vs time (replicate mean)",
				XLabel: "elapsed time (s)",
				YLabel: "nodes alive",
				Series: []plot.Series{
					meanSeries("pure-LEACH", reps[0].runs, aliveSeries, horizon, 240),
					meanSeries("Scheme1", reps[1].runs, aliveSeries, horizon, 240),
					meanSeries("Scheme2", reps[2].runs, aliveSeries, horizon, 240),
				},
			},
			{
				Title:  "Dynamic world — average remaining energy vs time (replicate mean)",
				XLabel: "elapsed time (s)",
				YLabel: "average remaining energy (J)",
				Series: []plot.Series{
					meanSeries("pure-LEACH", reps[0].runs, energySeries, horizon, 240),
					meanSeries("Scheme1", reps[1].runs, energySeries, horizon, 240),
					meanSeries("Scheme2", reps[2].runs, energySeries, horizon, 240),
				},
			},
		},
	}
}
