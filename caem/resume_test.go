package caem

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/store"
)

// resumeTestGrid is a small but real campaign: 2 scenarios × 2
// protocols × 2 seeds = 8 cells at a shortened horizon.
func resumeTestGrid(t *testing.T) (Config, []Scenario, []Protocol, []uint64) {
	t.Helper()
	churn, err := FindScenario("node-churn")
	if err != nil {
		t.Fatal(err)
	}
	storm, err := FindScenario("fading-storm")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig()
	base.DurationSeconds = 12
	base.Workers = 2
	return base, []Scenario{churn, storm}, []Protocol{PureLEACH, Scheme1}, []uint64{1, 2}
}

// summaries projects cells onto the stored metric view — the
// byte-comparable surface a resumed campaign promises to reproduce.
func summaries(t *testing.T, cells []CampaignCell) string {
	t.Helper()
	type row struct {
		Scenario string
		Protocol string
		Seed     uint64
		Summary  any
	}
	rows := make([]row, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, row{c.Scenario, c.Protocol.String(), c.Seed, summaryOf(c.Result)})
	}
	blob, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestResumeEquivalence is the checkpoint/resume differential: a
// campaign killed at a checkpoint and resumed from its store must be
// byte-identical — summaries, formatted aggregates, and aggregate
// structures — to the same campaign run uninterrupted.
func TestResumeEquivalence(t *testing.T) {
	base, scs, protos, seeds := resumeTestGrid(t)

	fresh, err := RunCampaign(base, scs, protos, seeds)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Phase 1: run to a 3-cell checkpoint, then "die".
	partial, err := RunCampaignWith(base, scs, protos, seeds, CampaignOptions{
		Store: st, Resume: true, MaxRuns: 3, Campaign: "resume-test",
	})
	if !errors.Is(err, ErrCampaignHalted) {
		t.Fatalf("checkpointed campaign returned %v, want ErrCampaignHalted", err)
	}
	if len(partial) != 3 {
		t.Fatalf("checkpoint completed %d cells, want 3", len(partial))
	}
	if st.Len() != 3 {
		t.Fatalf("store holds %d cells at checkpoint, want 3", st.Len())
	}

	// Phase 2: restart and resume to completion.
	resumed, err := RunCampaignWith(base, scs, protos, seeds, CampaignOptions{
		Store: st, Resume: true, Campaign: "resume-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(fresh) {
		t.Fatalf("resumed campaign has %d cells, want %d", len(resumed), len(fresh))
	}
	restoredCount := 0
	for i, c := range resumed {
		if c.Scenario != fresh[i].Scenario || c.Protocol != fresh[i].Protocol || c.Seed != fresh[i].Seed {
			t.Fatalf("cell %d identity diverged: %+v", i, c)
		}
		if c.Restored {
			restoredCount++
		}
	}
	if restoredCount != 3 {
		t.Fatalf("resumed campaign restored %d cells, want the 3 checkpointed ones", restoredCount)
	}

	if got, want := summaries(t, resumed), summaries(t, fresh); got != want {
		t.Fatalf("resumed summaries diverged from fresh run:\n got %s\nwant %s", got, want)
	}
	aggFresh, aggResumed := AggregateCampaign(fresh), AggregateCampaign(resumed)
	if !reflect.DeepEqual(aggFresh, aggResumed) {
		t.Fatalf("resumed aggregates diverged:\n got %+v\nwant %+v", aggResumed, aggFresh)
	}
	for i := range aggFresh {
		if aggFresh[i].ConsumedJ.Format(6) != aggResumed[i].ConsumedJ.Format(6) {
			t.Fatalf("formatted aggregate %d diverged", i)
		}
	}
}

// TestGeneratedCampaignResume is the generated-scenario half of the
// checkpoint/resume differential: a campaign over GenerateScenarios
// specs is halted at a checkpoint, the store is closed and reopened (a
// process death), and the specs are REGENERATED from the same
// (family, count, seed) spelling — the resumed campaign must restore
// the checkpointed cells by content hash and finish byte-identical to
// an uninterrupted run. This is what lets caem-sim -gen and the
// caem-serve "generate" field persist only the generator inputs.
func TestGeneratedCampaignResume(t *testing.T) {
	base := DefaultConfig()
	base.DurationSeconds = 12
	base.Workers = 2
	protos := []Protocol{PureLEACH, Scheme1}
	seeds := []uint64{1, 2}

	gen := func() []Scenario {
		scs, err := GenerateScenarios("mixed", 2, 42)
		if err != nil {
			t.Fatal(err)
		}
		return scs
	}

	fresh, err := RunCampaign(base, gen(), protos, seeds)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := RunCampaignWith(base, gen(), protos, seeds, CampaignOptions{
		Store: st, Resume: true, MaxRuns: 3, Campaign: "gen-resume",
	})
	if !errors.Is(err, ErrCampaignHalted) {
		t.Fatalf("checkpointed campaign returned %v, want ErrCampaignHalted", err)
	}
	if len(partial) != 3 || st.Len() != 3 {
		t.Fatalf("checkpoint completed %d cells with %d stored, want 3/3", len(partial), st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the store and regenerate the specs from scratch.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	resumed, err := RunCampaignWith(base, gen(), protos, seeds, CampaignOptions{
		Store: st2, Resume: true, Campaign: "gen-resume",
	})
	if err != nil {
		t.Fatal(err)
	}
	restored := 0
	for _, c := range resumed {
		if c.Restored {
			restored++
		}
	}
	if restored != 3 {
		t.Fatalf("resumed campaign restored %d cells, want the 3 checkpointed ones (regenerated specs rehashed differently?)", restored)
	}
	if got, want := summaries(t, resumed), summaries(t, fresh); got != want {
		t.Fatalf("generated-campaign resume diverged from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	if !reflect.DeepEqual(AggregateCampaign(fresh), AggregateCampaign(resumed)) {
		t.Fatal("generated-campaign aggregates diverged after resume")
	}
}

// TestResumeSurvivesStoreReopen: the same differential across a real
// store close/reopen — what a killed-and-restarted process does.
func TestResumeSurvivesStoreReopen(t *testing.T) {
	base, scs, protos, seeds := resumeTestGrid(t)
	dir := t.TempDir()

	fresh, err := RunCampaign(base, scs, protos, seeds)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCampaignWith(base, scs, protos, seeds, CampaignOptions{
		Store: st, Resume: true, MaxRuns: 5,
	}); !errors.Is(err, ErrCampaignHalted) {
		t.Fatalf("got %v, want ErrCampaignHalted", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 5 {
		t.Fatalf("reopened store holds %d cells, want 5", st2.Len())
	}
	resumed, err := RunCampaignWith(base, scs, protos, seeds, CampaignOptions{Store: st2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaries(t, resumed), summaries(t, fresh); got != want {
		t.Fatal("resume across store reopen diverged from fresh run")
	}
}

// TestResumeIgnoresForeignCells: cells stored under a different
// configuration hash must never satisfy a resume lookup.
func TestResumeIgnoresForeignCells(t *testing.T) {
	base, scs, protos, seeds := resumeTestGrid(t)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Fully populate the store at a DIFFERENT duration.
	other := base
	other.DurationSeconds = 20
	if _, err := RunCampaignWith(other, scs, protos, seeds, CampaignOptions{Store: st}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 8 {
		t.Fatalf("store holds %d cells, want 8", st.Len())
	}

	// Resuming the original campaign must find nothing reusable.
	resumed, err := RunCampaignWith(base, scs, protos, seeds, CampaignOptions{Store: st, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range resumed {
		if c.Restored {
			t.Fatalf("cell %d restored from a foreign configuration", i)
		}
	}
	// Both cell families now coexist in the store.
	if st.Len() != 16 {
		t.Fatalf("store holds %d cells, want 16 (two families)", st.Len())
	}
}

// TestCellHashNormalization: the per-cell axes and orchestration fields
// must not affect the hash; anything result-bearing must.
func TestCellHashNormalization(t *testing.T) {
	sc, err := FindScenario("node-churn")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig()
	h0, err := CellHash(base, sc)
	if err != nil {
		t.Fatal(err)
	}

	varied := base
	varied.Protocol = PureLEACH
	varied.Seed = 99
	varied.Workers = 7
	if h, _ := CellHash(varied, sc); h != h0 {
		t.Fatal("hash depends on per-cell axes (protocol/seed/workers)")
	}

	changed := base
	changed.TrafficLoad = 9
	if h, _ := CellHash(changed, sc); h == h0 {
		t.Fatal("hash ignores a result-bearing config change")
	}

	sc2 := sc
	sc2.Description = sc.Description + " (edited)"
	if h, _ := CellHash(base, sc2); h == h0 {
		t.Fatal("hash ignores a scenario spec change")
	}
}

// TestCampaignStoreAggregates: incremental aggregation over stored
// cells matches aggregating the live campaign results. The campaign
// runs serially so the store's append order equals submission order:
// Welford accumulation is order-sensitive in the last float ulps, and
// parallel completion order is not deterministic.
func TestCampaignStoreAggregates(t *testing.T) {
	base, scs, protos, seeds := resumeTestGrid(t)
	base.Workers = 1
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cells, err := RunCampaignWith(base, scs, protos, seeds, CampaignOptions{Store: st, Campaign: "agg"})
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := st.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	live := AggregateCampaign(cells)
	// Store order is completion order, so compare as (scenario, protocol)
	// keyed sets of formatted values.
	if len(fromStore) != len(live) {
		t.Fatalf("store aggregates %d groups, live %d", len(fromStore), len(live))
	}
	byKey := make(map[string]CampaignAggregate, len(live))
	for _, a := range live {
		byKey[a.Scenario+"/"+a.Protocol.String()] = a
	}
	for _, a := range fromStore {
		want, ok := byKey[a.Scenario+"/"+a.Protocol.String()]
		if !ok {
			t.Fatalf("store aggregate for unknown group %s/%s", a.Scenario, a.Protocol)
		}
		if !reflect.DeepEqual(a, want) {
			t.Fatalf("store aggregate diverged for %s/%s:\n got %+v\nwant %+v", a.Scenario, a.Protocol, a, want)
		}
	}
}

// TestSimPoolMatchesOneShot: the public pooled entry points are
// bit-identical to their one-shot equivalents.
func TestSimPoolMatchesOneShot(t *testing.T) {
	sc, err := FindScenario("node-churn")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DurationSeconds = 12

	pool := NewSimPool()
	// Interleave shapes and kinds to exercise reset-in-place.
	for round := 0; round < 2; round++ {
		for _, seed := range []uint64{1, 5} {
			cfg.Seed = seed
			want, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pool.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pooled Run diverged (round %d seed %d)", round, seed)
			}
			wantSc, err := RunScenario(sc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			gotSc, err := pool.RunScenario(sc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotSc, wantSc) {
				t.Fatalf("pooled RunScenario diverged (round %d seed %d)", round, seed)
			}
		}
	}
}

// TestSummaryMappingComplete guards the hand-mirrored field lists of
// summaryOf (Result → store.Summary) and cellOf (store.Summary →
// Result): every Summary field is set to a distinct sentinel, pushed
// through cellOf and back through summaryOf, and must survive exactly.
// A metric added to one mapping but not the other would silently zero
// out in restored cells — this test turns that drift into a failure.
func TestSummaryMappingComplete(t *testing.T) {
	var s store.Summary
	rv := reflect.ValueOf(&s).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Float64:
			f.SetFloat(float64(100 + i))
		case reflect.Int:
			f.SetInt(int64(100 + i))
		case reflect.Uint64:
			f.SetUint(uint64(100 + i))
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("store.Summary field %s has unhandled kind %v — extend this test", rv.Type().Field(i).Name, f.Kind())
		}
	}
	cell, ok, err := cellOf(store.Record{Hash: "h", Scenario: "sc", Protocol: "CAEM-scheme1", Seed: 1, Summary: s})
	if err != nil || !ok {
		t.Fatalf("cellOf = ok=%v err=%v", ok, err)
	}
	if back := summaryOf(cell.Result); back != s {
		t.Fatalf("summary did not survive cellOf→summaryOf:\n got %+v\nwant %+v", back, s)
	}
}

// TestAggregateJSONRoundTrip: NaN dispersion fields serialize as null
// and decode back to NaN.
func TestAggregateJSONRoundTrip(t *testing.T) {
	single := AggregateOf(3.5)
	blob, err := json.Marshal(single)
	if err != nil {
		t.Fatalf("single-replicate aggregate failed to marshal: %v", err)
	}
	var back Aggregate
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != 1 || back.Mean != 3.5 || back.SD == back.SD || back.CI95 == back.CI95 { // NaN != NaN
		t.Fatalf("round-tripped single aggregate = %+v", back)
	}

	multi := AggregateOf(1, 2, 3)
	blob, err = json.Marshal(multi)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, multi) {
		t.Fatalf("multi aggregate round trip = %+v, want %+v", back, multi)
	}
}
