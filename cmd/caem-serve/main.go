// Command caem-serve is the always-on campaign service: an HTTP API
// over a persistent, append-only results store and a bounded simulation
// worker budget.
//
// Usage:
//
//	caem-serve -addr :8080 -store ./caem-store -workers 0
//
// API:
//
//	POST /campaigns                submit a campaign (idempotent: equal
//	                               requests map to the same campaign id)
//	GET  /campaigns                list campaigns
//	GET  /campaigns/{id}           status: per-cell states + counters
//	GET  /campaigns/{id}/results   completed cells + mean±CI aggregates,
//	                               read back from the store (works
//	                               mid-run and after restarts)
//	GET  /campaigns/{id}/progress  NDJSON progress stream (curl -N)
//	GET  /healthz                  liveness + store stats
//
// A campaign request names library scenarios (or embeds inline specs),
// protocols, seeds, and partial config overrides:
//
//	curl -s localhost:8080/campaigns -d '{
//	  "scenarios": ["node-churn"],
//	  "protocols": ["leach", "scheme1"],
//	  "seeds": [1, 2, 3],
//	  "config": {"durationSeconds": 300}
//	}'
//
// Every completed (scenario, protocol, seed) cell is persisted as it
// finishes, keyed by a content hash of its full configuration. The
// service survives restarts: campaign specs live in the store, so a
// restarted caem-serve re-registers every campaign, restores the cells
// already on disk, and re-runs only what is missing. Results are
// deterministic — a cell computed before a crash is bit-identical to
// one computed after — so recovery changes nothing about the answers.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/caem"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("store", "caem-store", "results-store directory (created if absent)")
		workers  = flag.Int("workers", 0, "simulation worker budget (0 = one per CPU)")
	)
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	st, err := caem.OpenStore(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		os.Exit(1)
	}
	if n := st.RecoveredBytes(); n > 0 {
		fmt.Fprintf(os.Stderr, "caem-serve: store recovered from a torn tail (%d bytes dropped)\n", n)
	}
	srv, err := newServer(st, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("caem-serve: listening on %s, store %s, %d workers, %d cells on disk\n",
		*addr, st.Dir(), w, st.Len())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
		srv.Close()
		st.Close()
		os.Exit(1)
	case <-sig:
		fmt.Fprintln(os.Stderr, "caem-serve: shutting down (in-flight cells finish, pending cells resume on restart)")
		httpSrv.Close()
		srv.Close()
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "caem-serve: %v\n", err)
			os.Exit(1)
		}
	}
}
