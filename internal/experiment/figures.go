package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// protocolJobs builds one grid cell per protocol variant from a shared
// configuration template, labelled "<prefix>/<protocol>". Each cell is
// replicated across the options' seed list by runReplicated.
func protocolJobs(opts Options, prefix string, mutate func(*core.Config)) []runner.Job {
	jobs := make([]runner.Job, 0, 3)
	for _, pc := range protocolCases() {
		cfg := opts.baseConfig()
		cfg.Policy = pc.policy
		if mutate != nil {
			mutate(&cfg)
		}
		jobs = append(jobs, runner.Job{Label: prefix + "/" + pc.name, Config: cfg})
	}
	return jobs
}

// Figure8 reproduces "Average remaining power versus time": the mean
// per-node battery level of the three protocols at the reference load of
// 5 pkt/s with 10 J batteries, over the paper's 0-600 s window. Every
// cell aggregates the seed replicates as mean ± 95% CI.
func Figure8(opts Options) Report {
	horizon := opts.horizon(600 * sim.Second)
	reps := opts.runReplicated(protocolJobs(opts, "figure8", func(cfg *core.Config) {
		cfg.Horizon = horizon
	}))

	tab := Table{Headers: []string{"time(s)", "pure-LEACH(J)", "Scheme1(J)", "Scheme2(J)"}}
	const points = 13
	for i := 0; i <= points-1; i++ {
		t := sim.Time(int64(horizon) * int64(i) / int64(points-1))
		tab.AddRow(
			f1(t.Seconds()),
			seriesCell(reps[0].runs, energySeries, t, f3),
			seriesCell(reps[1].runs, energySeries, t, f3),
			seriesCell(reps[2].runs, energySeries, t, f3),
		)
	}
	end := func(rep replicates) float64 {
		s, ok := seriesStream(rep.runs, energySeries, horizon)
		if !ok {
			return 0
		}
		return s.Mean()
	}
	return Report{
		ID:    "figure8",
		Title: "Average remaining energy vs elapsed time (load 5 pkt/s, 10 J initial)",
		Table: tab,
		Notes: []string{
			repNote(opts),
			fmt.Sprintf("at %.0f s: pure-LEACH %.2f J, Scheme1 %.2f J, Scheme2 %.2f J remaining (replicate means)",
				horizon.Seconds(), end(reps[0]), end(reps[1]), end(reps[2])),
			"both CAEM variants retain more energy than pure LEACH throughout; Scheme 2 (fixed highest threshold) is the most frugal, matching the paper's Fig. 8 ordering",
		},
		Charts: []plot.Chart{{
			Title:  "Fig. 8 — average remaining energy vs time (replicate mean)",
			XLabel: "elapsed time (s)",
			YLabel: "average remaining energy (J)",
			Series: []plot.Series{
				meanSeries("pure-LEACH", reps[0].runs, energySeries, horizon, 240),
				meanSeries("Scheme1", reps[1].runs, energySeries, horizon, 240),
				meanSeries("Scheme2", reps[2].runs, energySeries, horizon, 240),
			},
		}},
	}
}

// Figure9 reproduces "Number of nodes alive versus time" and the derived
// lifetime gains (paper: ~+40% for Scheme 1, ~+130% for Scheme 2 over
// pure LEACH at load 5), with every cell replicated across seeds.
func Figure9(opts Options) Report {
	horizon := opts.horizon(2500 * sim.Second)
	reps := opts.runReplicated(protocolJobs(opts, "figure9", func(cfg *core.Config) {
		cfg.Horizon = horizon
	}))

	tab := Table{Headers: []string{"time(s)", "pure-LEACH", "Scheme1", "Scheme2"}}
	const points = 15
	for i := 0; i <= points-1; i++ {
		t := sim.Time(int64(horizon) * int64(i) / int64(points-1))
		row := []string{f1(t.Seconds())}
		for _, rep := range reps {
			row = append(row, seriesCell(rep.runs, aliveSeries, t, f0))
		}
		tab.AddRow(row...)
	}

	n := uint64(len(opts.seedList()))
	notes := []string{
		repNote(opts),
	}
	l, s1, s2 := reps[0].lifetimeStream(), reps[1].lifetimeStream(), reps[2].lifetimeStream()
	switch {
	case l.Count() == n && s1.Count() == n && s2.Count() == n:
		// Gains are only quoted when every replicate of every protocol
		// reached network death — otherwise the means cover different
		// seed subsets and the comparison is survivor-biased.
		notes = append(notes,
			fmt.Sprintf("network lifetime (80%% exhausted): pure-LEACH %s s, Scheme1 %s s (%+.0f%%), Scheme2 %s s (%+.0f%%)",
				ciString(l, f1), ciString(s1, f1), 100*(s1.Mean()/l.Mean()-1), ciString(s2, f1), 100*(s2.Mean()/l.Mean()-1)),
			"paper reports ~+40% (Scheme 1) and ~+130% (Scheme 2); the ordering and the Scheme-2 magnitude reproduce, Scheme 1's gain lands above the paper's (see EXPERIMENTS.md)")
	case l.Count() > 0 || s1.Count() > 0 || s2.Count() > 0:
		part := func(s stats.Stream) string {
			if s.Count() == 0 {
				return "-"
			}
			return fmt.Sprintf("%s s [%d/%d]", ciString(s, f1), s.Count(), n)
		}
		notes = append(notes, fmt.Sprintf(
			"network death was only observed in some replicates (pure-LEACH %s, Scheme1 %s, Scheme2 %s); gains are not quoted over mismatched seed subsets — rerun at Scale=1",
			part(l), part(s1), part(s2)))
	default:
		notes = append(notes, "not all protocols reached network death within the scaled horizon; rerun at Scale=1 for lifetime gains")
	}
	notes = append(notes, "curves drop steeply once deaths begin: LEACH rotation spreads the cluster-head burden, so exhaustion clusters in time (paper §IV.B)")
	return Report{
		ID:    "figure9",
		Title: "Number of nodes alive vs elapsed time (load 5 pkt/s)",
		Table: tab,
		Notes: notes,
		Charts: []plot.Chart{{
			Title:  "Fig. 9 — nodes alive vs time (replicate mean)",
			XLabel: "elapsed time (s)",
			YLabel: "nodes alive",
			Series: []plot.Series{
				meanSeries("pure-LEACH", reps[0].runs, aliveSeries, horizon, 240),
				meanSeries("Scheme1", reps[1].runs, aliveSeries, horizon, 240),
				meanSeries("Scheme2", reps[2].runs, aliveSeries, horizon, 240),
			},
		}},
	}
}

// Figure10 reproduces "Network lifetime versus traffic load": the 80%-dead
// time of each protocol as the per-node load sweeps 5..30 pkt/s. Each
// (load, protocol) cell is the mean ± 95% CI over the seed replicates
// that reached network death; a "[k/n]" suffix flags cells where only k
// of n replicates died within the horizon.
func Figure10(opts Options) Report {
	tab := Table{Headers: []string{"load(pkt/s)", "pure-LEACH(s)", "Scheme1(s)", "Scheme2(s)", "S1-gain", "S2-gain"}}
	var firstGapS1, lastGapS1 float64
	var gapsSet bool
	sweep := make([]plot.Series, 3)
	for i, pc := range protocolCases() {
		sweep[i].Name = pc.name
	}
	var cells []runner.Job
	for _, load := range opts.loads() {
		cells = append(cells, protocolJobs(opts, fmt.Sprintf("figure10/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.Horizon = opts.horizon(4000 * sim.Second)
			cfg.StopWhenNetworkDead = true
			cfg.SampleInterval = 20 * sim.Second
		})...)
	}
	reps := opts.runReplicated(cells)
	n := len(opts.seedList())
	for i, load := range opts.loads() {
		row := []string{f1(load)}
		// Gains are only computed between cells whose lifetime every
		// replicate observed: a partially-dead cell's mean covers a
		// different (survivor-biased) seed subset, so comparing it to the
		// baseline would overstate or understate the gain. Such cells keep
		// their [k/n]-marked mean but contribute "-" to the gain columns.
		var lifetimes []float64
		for j := range protocolCases() {
			rep := reps[i*len(protocolCases())+j]
			life := rep.lifetimeStream()
			if life.Count() > 0 {
				row = append(row, partialCell(life, n, f1))
				if int(life.Count()) < n {
					lifetimes = append(lifetimes, -1)
				} else {
					lifetimes = append(lifetimes, life.Mean())
					// Only fully-observed cells are charted: a partial
					// cell's mean covers the fastest-dying seeds only and
					// would plot a deflated point.
					sweep[j].X = append(sweep[j].X, load)
					sweep[j].Y = append(sweep[j].Y, life.Mean())
				}
			} else {
				lifetimes = append(lifetimes, -1)
				row = append(row, fmt.Sprintf(">%.0f", rep.mean(func(r core.Result) float64 { return r.Elapsed.Seconds() })))
			}
		}
		gain := func(x float64) string {
			if lifetimes[0] <= 0 || x <= 0 {
				return "-"
			}
			return fmt.Sprintf("%+.0f%%", 100*(x/lifetimes[0]-1))
		}
		row = append(row, gain(lifetimes[1]), gain(lifetimes[2]))
		tab.AddRow(row...)
		if lifetimes[0] > 0 && lifetimes[1] > 0 {
			g := lifetimes[1]/lifetimes[0] - 1
			if !gapsSet {
				firstGapS1 = g
			}
			lastGapS1 = g
			gapsSet = true
		}
	}
	return Report{
		ID:    "figure10",
		Title: "Network lifetime vs traffic load (5..30 pkt/s)",
		Table: tab,
		Charts: []plot.Chart{{
			Title:  "Fig. 10 — network lifetime vs traffic load (replicate mean)",
			XLabel: "added traffic load (pkt/s per node)",
			YLabel: "network lifetime (s)",
			Series: sweep,
		}},
		Notes: figure10Notes(opts, gapsSet, firstGapS1, lastGapS1),
	}
}

// figure10Notes assembles Figure10's observations; the load-trend gain
// claim is only made when at least one load actually yielded a
// fully-observed LEACH-vs-Scheme1 lifetime pair — otherwise a
// fabricated "+0%" would be quoted.
func figure10Notes(opts Options, gapsSet bool, firstGap, lastGap float64) []string {
	notes := []string{
		repNote(opts) + "; [k/n] marks cells where only k replicates reached network death — such survivor-biased cells are excluded from the gain columns and the chart",
		"all lifetimes fall as load rises: more transmissions drain batteries faster (paper Fig. 10)",
	}
	if gapsSet {
		notes = append(notes, fmt.Sprintf("Scheme 1's advantage over pure LEACH shrinks with load (%+.0f%% at the lowest computed load vs %+.0f%% at the highest): under saturation its threshold sits at the lowest class most of the time, degenerating toward non-adaptive behaviour (paper §IV.B)",
			100*firstGap, 100*lastGap))
	} else {
		notes = append(notes, "no load yielded a fully-observed lifetime for both pure-LEACH and Scheme1, so the load-trend gain is not quoted; rerun at Scale=1")
	}
	notes = append(notes, "Scheme 2 keeps the longest lifetime across the sweep")
	return notes
}

// Figure11 reproduces "Average amount of energy consumed versus traffic
// load": communication energy per successfully delivered packet, for pure
// LEACH vs Scheme 1 (the paper's comparison; Scheme 2 included as the
// floor reference), replicated across seeds.
func Figure11(opts Options) Report {
	tab := Table{Headers: []string{"load(pkt/s)", "pure-LEACH(mJ)", "Scheme1(mJ)", "Scheme2(mJ)", "S1-saving"}}
	var minSave, maxSave float64 = 1, 0
	var firstSave, lastSave float64
	sweep := make([]plot.Series, 3)
	for i, pc := range protocolCases() {
		sweep[i].Name = pc.name
	}
	eppMilli := func(r core.Result) float64 { return 1000 * r.EnergyPerPktJ }
	var cells []runner.Job
	for _, load := range opts.loads() {
		cells = append(cells, protocolJobs(opts, fmt.Sprintf("figure11/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.Horizon = opts.horizon(300 * sim.Second)
		})...)
	}
	reps := opts.runReplicated(cells)
	for i, load := range opts.loads() {
		row := []string{f1(load)}
		var perPkt []float64
		for j := range protocolCases() {
			rep := reps[i*len(protocolCases())+j]
			s := rep.stream(eppMilli)
			perPkt = append(perPkt, s.Mean())
			row = append(row, ciString(s, f3))
			sweep[len(perPkt)-1].X = append(sweep[len(perPkt)-1].X, load)
			sweep[len(perPkt)-1].Y = append(sweep[len(perPkt)-1].Y, s.Mean())
		}
		saving := 1 - perPkt[1]/perPkt[0]
		row = append(row, pct(saving))
		tab.AddRow(row...)
		if saving < minSave {
			minSave = saving
		}
		if saving > maxSave {
			maxSave = saving
		}
		if i == 0 {
			firstSave = saving
		}
		lastSave = saving
	}
	return Report{
		ID:    "figure11",
		Title: "Average communication energy per delivered packet vs traffic load",
		Table: tab,
		Charts: []plot.Chart{{
			Title:  "Fig. 11 — energy per delivered packet vs traffic load (replicate mean)",
			XLabel: "added traffic load (pkt/s per node)",
			YLabel: "communication energy per packet (mJ)",
			Series: sweep,
		}},
		Notes: []string{
			repNote(opts) + "; savings compare replicate means",
			fmt.Sprintf("Scheme 1 saves %.0f%%-%.0f%% per packet over pure LEACH across the sweep (paper: 30-40%%)", 100*minSave, 100*maxSave),
			fmt.Sprintf("the saving narrows with load (%.0f%% -> %.0f%%): Scheme 1 lowers its threshold more often as queues build (paper §IV.C)", 100*firstSave, 100*lastSave),
			"pure LEACH's per-packet energy falls with load: larger bursts amortize the radio startup cost (paper §IV.C)",
		},
	}
}

// Figure12 reproduces "Standard deviation of queue length versus traffic
// load": the short-term fairness index, with effectively unbounded buffers
// per §IV.C so the index reflects service shares rather than drops.
func Figure12(opts Options) Report {
	tab := Table{Headers: []string{"load(pkt/s)", "pure-LEACH", "Scheme1", "Scheme2"}}
	loads := opts.loads()
	var crossover float64 = -1
	sweep := make([]plot.Series, 3)
	for i, pc := range protocolCases() {
		sweep[i].Name = pc.name
	}
	queueDev := func(r core.Result) float64 { return r.QueueStdDev }
	var cells []runner.Job
	for _, load := range loads {
		cells = append(cells, protocolJobs(opts, fmt.Sprintf("figure12/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.BufferCapacity = 0 // "substantially large enough" (§IV.C)
			cfg.Horizon = opts.horizon(300 * sim.Second)
		})...)
	}
	reps := opts.runReplicated(cells)
	for i, load := range loads {
		row := []string{f1(load)}
		var devs []float64
		for j := range protocolCases() {
			rep := reps[i*len(protocolCases())+j]
			s := rep.stream(queueDev)
			devs = append(devs, s.Mean())
			row = append(row, ciString(s, f2))
			sweep[len(devs)-1].X = append(sweep[len(devs)-1].X, load)
			sweep[len(devs)-1].Y = append(sweep[len(devs)-1].Y, s.Mean())
		}
		tab.AddRow(row...)
		if devs[1] >= devs[2] && crossover < 0 {
			crossover = load
		}
	}
	notes := []string{
		repNote(opts),
	}
	switch {
	case crossover < 0:
		notes = append(notes, "Scheme 1's adaptive threshold yields a lower queue-length standard deviation than Scheme 2 at every load: relaxing the threshold under queue growth returns bandwidth to nodes with poor channels (paper Fig. 12)")
	case crossover > loads[0]:
		notes = append(notes, fmt.Sprintf(
			"below saturation Scheme 1 is markedly fairer than Scheme 2, as the paper's Fig. 12 shows; from ~%.0f pkt/s the unbounded queues diverge and the index becomes a backlog/capacity measure, where Scheme 2's all-top-class transmissions give it higher service capacity (see EXPERIMENTS.md)", crossover))
	default:
		notes = append(notes, "WARNING: Scheme 1 was not fairer than Scheme 2 even at the lightest load; rerun at Scale=1")
	}
	notes = append(notes, "at light load pure LEACH is the fairest: it never withholds service on channel grounds, which is precisely why it wastes energy; once it saturates (its airtimes are the longest) its queues diverge fastest")
	return Report{
		ID:    "figure12",
		Title: "Standard deviation of queue length vs traffic load (short-term fairness)",
		Table: tab,
		Charts: []plot.Chart{{
			Title:  "Fig. 12 — queue-length standard deviation vs traffic load (replicate mean)",
			XLabel: "added traffic load (pkt/s per node)",
			YLabel: "std dev of queue length",
			Series: sweep,
		}},
		Notes: notes,
	}
}

// NetworkPerformance is the X1 extension: the §IV.A network-performance
// metrics (average and tail packet delay, aggregate throughput,
// successful delivery rate) that the paper defines but defers to its
// long version.
func NetworkPerformance(opts Options) Report {
	tab := Table{Headers: []string{
		"load(pkt/s)", "protocol", "delay(ms)", "p95-delay(ms)", "throughput(kbps)", "delivery",
	}}
	var cells []runner.Job
	for _, load := range opts.loads() {
		cells = append(cells, protocolJobs(opts, fmt.Sprintf("netperf/load%.0f", load), func(cfg *core.Config) {
			cfg.ArrivalRatePerSecond = load
			cfg.Horizon = opts.horizon(300 * sim.Second)
		})...)
	}
	reps := opts.runReplicated(cells)
	for i, load := range opts.loads() {
		for j, pc := range protocolCases() {
			rep := reps[i*len(protocolCases())+j]
			tab.AddRow(f1(load), pc.name,
				rep.cell(f1, func(r core.Result) float64 { return r.MeanDelayMs }),
				rep.cell(f1, func(r core.Result) float64 { return r.P95DelayMs }),
				rep.cell(f1, func(r core.Result) float64 { return r.AggregateKbps }),
				rep.cell(pct, func(r core.Result) float64 { return r.DeliveryRate }),
			)
		}
	}
	return Report{
		ID:    "netperf",
		Title: "Network performance vs traffic load (delay / throughput / delivery; paper §IV.A metrics, long-version results)",
		Table: tab,
		Notes: []string{
			repNote(opts) + "; p95 delay is the streaming P² estimate per run",
			"channel-adaptive buffering trades delay for energy: Scheme 2 has the largest delay and the lowest delivery rate at every load, Scheme 1 sits between it and pure LEACH",
		},
	}
}
