package scenario

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/sim"
)

// Compile lowers the spec onto cfg: node rules materialize into the
// per-node override arrays, and the timeline translates into
// core.WorldEvent hooks appended to cfg.World (ramps and bursts expand
// into multiple discrete events). The spec's embedded Config overlay is
// NOT applied here — that is the public layer's job (it owns the public
// config schema); Compile consumes the already-resolved core.Config.
//
// Every compiled closure captures only immutable data, so the resulting
// Config may be shared across concurrent runs.
func Compile(s Spec, cfg *core.Config) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if cfg.Nodes < 2 {
		return fmt.Errorf("scenario %q: config has %d nodes", s.Name, cfg.Nodes)
	}

	// Per-node heterogeneity: materialize full override arrays from the
	// homogeneous base (or pre-existing overrides), then apply rules in
	// order.
	rates := make([]float64, cfg.Nodes)
	energies := make([]float64, cfg.Nodes)
	for i := range rates {
		rates[i] = cfg.ArrivalRatePerSecond
		if len(cfg.NodeArrivalRate) == cfg.Nodes {
			rates[i] = cfg.NodeArrivalRate[i]
		}
		energies[i] = cfg.InitialEnergyJ
		if len(cfg.NodeEnergyJ) == cfg.Nodes {
			energies[i] = cfg.NodeEnergyJ[i]
		}
	}
	for ri, rule := range s.Nodes {
		idx, err := rule.Nodes.Resolve(cfg.Nodes)
		if err != nil {
			return fmt.Errorf("scenario %q: node rule %d: %w", s.Name, ri, err)
		}
		for _, i := range idx {
			if rule.RatePerSecond != nil {
				rates[i] = *rule.RatePerSecond
			}
			if rule.RateScale > 0 {
				rates[i] *= rule.RateScale
			}
			if rule.EnergyJ != nil {
				energies[i] = *rule.EnergyJ
			}
			if rule.EnergyScale > 0 {
				energies[i] *= rule.EnergyScale
			}
		}
	}
	if len(s.Nodes) > 0 {
		cfg.NodeArrivalRate = rates
		cfg.NodeEnergyJ = energies
	}

	for ei, ev := range s.Timeline {
		compiled, err := compileEvent(ev, cfg, rates)
		if err != nil {
			return fmt.Errorf("scenario %q: timeline[%d] (%s): %w", s.Name, ei, ev.Type, err)
		}
		cfg.World = append(cfg.World, compiled...)
	}
	return nil
}

// compileEvent lowers one declared event into one or more world events.
// baseRates holds the post-rule per-node base rates (the ramp default
// start).
func compileEvent(ev Event, cfg *core.Config, baseRates []float64) ([]core.WorldEvent, error) {
	at := sim.FromSeconds(ev.AtSeconds)
	idx := []int(nil)
	switch ev.Type {
	case EventChannel, EventInterference, EventSinkDown, EventSinkUp:
		// Deployment-wide (or region-addressed): no node selection.
	default:
		var err error
		idx, err = ev.Nodes.Resolve(cfg.Nodes)
		if err != nil {
			return nil, err
		}
	}

	switch ev.Type {
	case EventKill:
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.Kill(i)
			}
		}}}, nil

	case EventRevive:
		charge := ev.EnergyJ
		perNode := charge == 0 // fall back to each node's initial budget
		energies := cfg.NodeEnergyJ
		initial := cfg.InitialEnergyJ
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				j := charge
				if perNode {
					j = initial
					if len(energies) > i {
						j = energies[i]
					}
				}
				w.Revive(i, j)
			}
		}}}, nil

	case EventTopUp:
		j := ev.EnergyJ
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.AddEnergy(i, j)
			}
		}}}, nil

	case EventSetRate:
		r := *ev.RatePerSecond
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.SetArrivalRate(i, r)
			}
		}}}, nil

	case EventScaleRate:
		f := ev.Scale
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.ScaleArrivalRate(i, f)
			}
		}}}, nil

	case EventRampRate:
		// A linear ramp is a staircase of absolute set-rate events: the
		// start and target are fixed at compile time, so the compiled
		// closures stay pure and the staircase is identical on every run.
		steps := ev.Steps
		if steps == 0 {
			steps = 8
		}
		target := *ev.RatePerSecond
		out := make([]core.WorldEvent, 0, steps)
		for s := 1; s <= steps; s++ {
			frac := float64(s) / float64(steps)
			stepAt := at + sim.FromSeconds(ev.DurationSeconds*frac)
			fromFixed := ev.FromRatePerSecond
			out = append(out, core.WorldEvent{At: stepAt, Apply: func(w *core.World) {
				for _, i := range idx {
					from := baseRates[i]
					if fromFixed != nil {
						from = *fromFixed
					}
					w.SetArrivalRate(i, from+(target-from)*frac)
				}
			}})
		}
		return out, nil

	case EventBurst:
		// Scale up at the start, divide back out at the end. Stateless by
		// design (no captured pre-burst snapshot), so overlapping events
		// compose multiplicatively and compiled configs stay shareable.
		f := ev.Scale
		end := at + sim.FromSeconds(ev.DurationSeconds)
		return []core.WorldEvent{
			{At: at, Apply: func(w *core.World) {
				for _, i := range idx {
					w.ScaleArrivalRate(i, f)
				}
			}},
			{At: end, Apply: func(w *core.World) {
				for _, i := range idx {
					w.ScaleArrivalRate(i, 1/f)
				}
			}},
		}, nil

	case EventChannel:
		shift := *ev.Channel
		// Pre-flight the shift against the config's own parameters so an
		// invalid combination fails at compile time, not mid-run. The
		// runtime re-check in UpdateChannel guards against shifts stacking
		// into invalidity (e.g. two events with partial fields).
		trial := cfg.Channel
		shift.apply(&trial)
		if err := trial.Validate(); err != nil {
			return nil, err
		}
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			w.UpdateChannel(func(p *channel.Params) { shift.apply(p) })
		}}}, nil

	case EventMove:
		if ev.Region != nil {
			r := *ev.Region
			if err := regionInField(r, cfg); err != nil {
				return nil, err
			}
			return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
				for _, i := range idx {
					w.MoveNodeWithin(i, r.X, r.Y, r.Width, r.Height)
				}
			}}}, nil
		}
		x, y := *ev.X, *ev.Y
		if x < 0 || x > cfg.FieldWidth || y < 0 || y > cfg.FieldHeight {
			return nil, fmt.Errorf("target (%v, %v) outside the %vx%v field",
				x, y, cfg.FieldWidth, cfg.FieldHeight)
		}
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			for _, i := range idx {
				w.MoveNode(i, x, y)
			}
		}}}, nil

	case EventInterference:
		r := *ev.Region
		if err := regionInField(r, cfg); err != nil {
			return nil, err
		}
		db := ev.PenaltyDB
		// The burst id ties the end event to exactly the nodes the start
		// caught. len(cfg.World) at compile time is unique per declared
		// event (every event appends at least one world event), immutable,
		// and identical on every run of the compiled config.
		id := uint64(len(cfg.World))
		end := at + sim.FromSeconds(ev.DurationSeconds)
		return []core.WorldEvent{
			{At: at, Apply: func(w *core.World) {
				w.StartInterference(id, r.X, r.Y, r.Width, r.Height, db)
			}},
			{At: end, Apply: func(w *core.World) {
				w.EndInterference(id, db)
			}},
		}, nil

	case EventSinkDown:
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			w.SetSinkDown(true)
		}}}, nil

	case EventSinkUp:
		return []core.WorldEvent{{At: at, Apply: func(w *core.World) {
			w.SetSinkDown(false)
		}}}, nil
	}
	return nil, fmt.Errorf("unknown event type %q", ev.Type)
}

// regionInField checks the region lies within the run's field, so a
// scatter or burst footprint can never address space nodes cannot occupy.
func regionInField(r Region, cfg *core.Config) error {
	if r.X+r.Width > cfg.FieldWidth || r.Y+r.Height > cfg.FieldHeight {
		return fmt.Errorf("region [%v, %v)x[%v, %v) exceeds the %vx%v field",
			r.X, r.X+r.Width, r.Y, r.Y+r.Height, cfg.FieldWidth, cfg.FieldHeight)
	}
	return nil
}

// apply writes the shift's non-nil fields onto p.
func (c ChannelShift) apply(p *channel.Params) {
	if c.DopplerHz != nil {
		p.DopplerHz = *c.DopplerHz
	}
	if c.ShadowingSigmaDB != nil {
		p.ShadowingSigmaDB = *c.ShadowingSigmaDB
	}
	if c.ShadowingCorr != nil {
		p.ShadowingCorr = *c.ShadowingCorr
	}
	if c.PathLossExponent != nil {
		p.PathLossExponent = *c.PathLossExponent
	}
	if c.ReferenceSNRdB != nil {
		p.ReferenceSNRdB = *c.ReferenceSNRdB
	}
	if c.RicianK != nil {
		p.RicianK = *c.RicianK
	}
}
