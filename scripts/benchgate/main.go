// Command benchgate is the CI bench-regression guard: it runs the
// hot-path benchmarks (ns per simulated second for the static and
// scenario engines) and fails when any result regresses beyond a
// slack factor of the committed baseline. The factor is deliberately
// loose — CI runners are noisy shared machines — so only order-of-
// magnitude regressions (an accidentally quadratic hot path, a
// reintroduced per-event allocation storm) trip it, not scheduler
// jitter.
//
// Usage (from the repository root, as `make bench-gate` does):
//
//	go run ./scripts/benchgate -baseline BENCH_2.json -factor 2.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// baseline mirrors the slice of the BENCH_*.json schema the gate
// consumes: per-protocol ns/op for the static hot path and the single
// scenario-engine figure.
type baseline struct {
	Benchmarks struct {
		SimulatedSecond struct {
			After map[string]struct {
				NsOp float64 `json:"ns_op"`
			} `json:"after"`
		} `json:"BenchmarkSimulatedSecond"`
		ScenarioSecond struct {
			Result struct {
				NsOp float64 `json:"ns_op"`
			} `json:"result"`
		} `json:"BenchmarkScenarioSecond"`
	} `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_2.json", "committed baseline JSON with the reference ns/op values")
		factor       = flag.Float64("factor", 2.5, "fail when measured ns/op exceeds factor x baseline")
		benchtime    = flag.String("benchtime", "1000x", "benchtime passed to go test (iterations = simulated seconds); MUST match the baseline's benchtime — the per-second cost is horizon-dependent (the network dies partway through a long run and dead seconds are nearly free), so comparing across benchtimes skews the ratio")
	)
	flag.Parse()

	refs, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal("loading baseline: %v", err)
	}
	if len(refs) == 0 {
		fatal("baseline %s holds no recognizable ns/op entries", *baselinePath)
	}

	got, raw, err := runBenchmarks(*benchtime)
	if err != nil {
		fatal("running benchmarks: %v\n%s", err, raw)
	}

	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "baseline ns/op", "measured ns/op", "ratio")
	failed := false
	for _, name := range sortedKeys(refs) {
		ref := refs[name]
		measured, ok := got[name]
		if !ok {
			fmt.Printf("%-40s %14.0f %14s %8s\n", name, ref, "MISSING", "-")
			failed = true
			continue
		}
		ratio := measured / ref
		verdict := ""
		if ratio > *factor {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s %14.0f %14.0f %7.2fx%s\n", name, ref, measured, ratio, verdict)
	}
	if failed {
		fatal("bench gate FAILED: a hot-path benchmark regressed beyond %.1fx its %s baseline (or went missing)", *factor, *baselinePath)
	}
	fmt.Printf("bench gate passed: every hot path within %.1fx of %s\n", *factor, *baselinePath)
}

func loadBaseline(path string) (map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(blob, &b); err != nil {
		return nil, err
	}
	refs := make(map[string]float64)
	for proto, v := range b.Benchmarks.SimulatedSecond.After {
		if v.NsOp > 0 {
			refs["BenchmarkSimulatedSecond/"+proto] = v.NsOp
		}
	}
	if v := b.Benchmarks.ScenarioSecond.Result.NsOp; v > 0 {
		refs["BenchmarkScenarioSecond"] = v
	}
	return refs, nil
}

// runBenchmarks executes the two gated benchmarks and returns measured
// ns/op keyed by benchmark name (GOMAXPROCS suffix stripped).
func runBenchmarks(benchtime string) (map[string]float64, string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^(BenchmarkSimulatedSecond|BenchmarkScenarioSecond)$",
		"-benchtime", benchtime, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, string(out), err
	}
	got := make(map[string]float64)
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcSuffix(fields[0])
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, perr := strconv.ParseFloat(fields[i], 64)
				if perr == nil {
					got[name] = v
				}
				break
			}
		}
	}
	return got, string(out), nil
}

// stripProcSuffix removes the trailing "-<GOMAXPROCS>" from a
// benchmark name ("BenchmarkScenarioSecond-8" → "BenchmarkScenarioSecond").
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
