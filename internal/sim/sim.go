// Package sim implements the deterministic discrete-event engine the whole
// simulation runs on.
//
// Time is an int64 count of microseconds. Integer time keeps the future
// event list exactly ordered (no floating-point ties) and makes runs
// bit-reproducible. One microsecond of resolution is two orders of
// magnitude below the shortest physical interval in the model (a 20 µs
// backoff slot), so quantization is immaterial.
//
// Ties are broken by scheduling order (a monotonically increasing sequence
// number), which is the property that makes event execution deterministic.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in microseconds.
type Time int64

// Duration constructors and conversions.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a timestamp (or duration) to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a timestamp (or duration) to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds into a Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time {
	if s >= 0 {
		return Time(s*1e6 + 0.5)
	}
	return Time(s*1e6 - 0.5)
}

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Handler is an event callback. It runs at its scheduled time with the
// engine clock already advanced.
type Handler func()

type event struct {
	at     Time
	seq    uint64
	fn     Handler
	index  int // heap index, -1 once popped or cancelled
	cancel bool
	label  string
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Valid reports whether the ID refers to a still-pending event.
func (id EventID) Valid() bool { return id.ev != nil && !id.ev.cancel && id.ev.index >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation kernel.
type Engine struct {
	now      Time
	seq      uint64
	fel      eventHeap
	executed uint64
	stopped  bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far (for tests and
// performance accounting).
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.fel) }

// Schedule runs fn after delay. A negative delay panics: the caller has a
// logic error, and silently clamping would hide it.
func (e *Engine) Schedule(delay Time, fn Handler) EventID {
	return e.ScheduleLabeled(delay, "", fn)
}

// ScheduleLabeled is Schedule with a debugging label attached to the event.
func (e *Engine) ScheduleLabeled(delay Time, label string, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v scheduling %q at %v", delay, label, e.now))
	}
	return e.at(e.now+delay, label, fn)
}

// ScheduleAt runs fn at the given absolute time, which must not be in the
// past.
func (e *Engine) ScheduleAt(at Time, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%v) in the past at %v", at, e.now))
	}
	return e.at(at, "", fn)
}

func (e *Engine) at(at Time, label string, fn Handler) EventID {
	if fn == nil {
		panic("sim: nil handler")
	}
	ev := &event{at: at, seq: e.seq, fn: fn, label: label}
	e.seq++
	heap.Push(&e.fel, ev)
	return EventID{ev: ev}
}

// Cancel removes a pending event. Cancelling an already-executed or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.cancel || ev.index < 0 {
		return false
	}
	ev.cancel = true
	heap.Remove(&e.fel, ev.index)
	return true
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the future event list is
// empty, the horizon is passed, or Stop is called. Events with timestamps
// strictly greater than horizon are left in the queue; the clock is
// advanced to horizon on normal completion so Now() is well-defined.
func (e *Engine) Run(horizon Time) {
	e.stopped = false
	for len(e.fel) > 0 && !e.stopped {
		ev := e.fel[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&e.fel)
		e.now = ev.at
		e.executed++
		ev.fn()
	}
	if !e.stopped && e.now < horizon {
		e.now = horizon
	}
}

// RunAll executes every pending event regardless of horizon. Useful in
// tests; production runs should bound time with Run.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.fel) > 0 && !e.stopped {
		ev := heap.Pop(&e.fel).(*event)
		e.now = ev.at
		e.executed++
		ev.fn()
	}
}

// Timer is a restartable one-shot convenience wrapper around Schedule.
// Restarting an armed timer cancels the previous shot.
type Timer struct {
	eng *Engine
	id  EventID
}

// NewTimer returns a timer bound to the engine.
func NewTimer(eng *Engine) *Timer { return &Timer{eng: eng} }

// Arm schedules fn after delay, cancelling any previously armed shot.
func (t *Timer) Arm(delay Time, fn Handler) {
	t.Disarm()
	t.id = t.eng.Schedule(delay, fn)
}

// Disarm cancels the pending shot, if any.
func (t *Timer) Disarm() {
	if t.id.Valid() {
		t.eng.Cancel(t.id)
	}
	t.id = EventID{}
}

// Armed reports whether a shot is pending.
func (t *Timer) Armed() bool { return t.id.Valid() }
