package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

var update = flag.Bool("update", false, "rewrite testdata goldens")

// routeTableText renders the route table in the golden-file format.
func routeTableText() string {
	var sb strings.Builder
	sb.WriteString("# caem-serve /v1 API surface.\n")
	sb.WriteString("# Regenerate: go test ./cmd/caem-serve -run TestAPIRouteTable -update\n")
	for _, rt := range routeTable {
		fmt.Fprintf(&sb, "%-4s /v1%-33s legacy=%-9s %s\n", rt.Method, rt.Path, rt.Legacy, rt.Doc)
	}
	return sb.String()
}

// noRedirect is a client that surfaces 3xx responses instead of
// following them.
var noRedirect = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

// isMuxMiss reports whether a response came from the mux's own
// not-found handler rather than a mounted route.
func isMuxMiss(resp *http.Response, body []byte) bool {
	return resp.StatusCode == http.StatusNotFound &&
		!strings.Contains(resp.Header.Get("Content-Type"), "json")
}

// TestAPIRouteTable is the api-check gate: the route table must match
// the committed golden byte-for-byte, and every row must be live on a
// real server — canonical /v1 path mounted, legacy GETs 301ing to
// their /v1 twin with the query preserved, legacy POSTs (and the
// probe/scrape GETs) aliased.
func TestAPIRouteTable(t *testing.T) {
	goldenPath := filepath.Join("testdata", "api_routes.golden")
	got := routeTableText()
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("route table drifted from %s — update the golden if the API change is intentional.\n--- got\n%s--- want\n%s",
			goldenPath, got, want)
	}

	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	probe := func(method, path string) *http.Response {
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noRedirect.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	for _, rt := range routeTable {
		path := strings.ReplaceAll(rt.Path, "{id}", "zzz")
		canonical := probe(rt.Method, "/v1"+path)
		if isMuxMiss(canonical, nil) {
			t.Errorf("%s /v1%s: canonical route not mounted", rt.Method, rt.Path)
		}
		legacy := probe(rt.Method, path+"?q=1")
		switch rt.Legacy {
		case "redirect":
			if legacy.StatusCode != http.StatusMovedPermanently {
				t.Errorf("%s %s: legacy = %d, want 301", rt.Method, path, legacy.StatusCode)
				continue
			}
			if loc := legacy.Header.Get("Location"); loc != "/v1"+path+"?q=1" {
				t.Errorf("%s %s: Location = %q, want %q", rt.Method, path, loc, "/v1"+path+"?q=1")
			}
		case "alias":
			if isMuxMiss(legacy, nil) || legacy.StatusCode == http.StatusMovedPermanently {
				t.Errorf("%s %s: legacy alias = %d, want the canonical handler", rt.Method, path, legacy.StatusCode)
			}
		default:
			t.Errorf("%s %s: unknown legacy mode %q", rt.Method, rt.Path, rt.Legacy)
		}
	}
}

// errorEnvelope decodes the uniform error body.
func errorEnvelope(t *testing.T, resp *http.Response) api.Error {
	t.Helper()
	defer resp.Body.Close()
	var body struct {
		Error api.Error `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("response is not the error envelope: %v", err)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", body.Error)
	}
	return body.Error
}

// TestErrorEnvelope: every failure mode answers with
// {"error":{"code","message","details"}} and a stable code.
func TestErrorEnvelope(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	for _, tc := range []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"unknown campaign", "GET", "/v1/campaigns/nope", "", 404, api.CodeNotFound},
		{"bad request body", "POST", "/v1/campaigns", "{", 400, api.CodeInvalidRequest},
		{"bad page_size", "GET", "/v1/campaigns?page_size=-1", "", 400, api.CodeInvalidRequest},
		{"bad page_token", "GET", "/v1/campaigns?page_token=%21%21", "", 400, api.CodeInvalidRequest},
		{"bad claim body", "POST", "/v1/leases/claim", "{", 400, api.CodeInvalidRequest},
		{"lease gone", "POST", "/v1/leases/zzz/renew", "", 410, api.CodeGone},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if env := errorEnvelope(t, resp); env.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, env.Code, tc.code)
		}
	}
}

// listPage fetches one page of the campaign listing.
func listPage(t *testing.T, url string) (listResponse, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var page listResponse
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page, resp.Header
}

// TestListPagination: cursor pagination over GET /v1/campaigns with
// Link rel="next" headers, stable across pages in submission order.
func TestListPagination(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	var ids []string
	for seed := 1; seed <= 3; seed++ {
		body := fmt.Sprintf(`{"scenarios":["node-churn"],"protocols":["leach"],"seeds":[%d],"config":{"durationSeconds":5}}`, seed)
		ids = append(ids, postCampaign(t, ts.URL, body).ID)
	}

	page1, hdr := listPage(t, ts.URL+"/v1/campaigns?page_size=2")
	if len(page1.Campaigns) != 2 || page1.NextPageToken == "" {
		t.Fatalf("page 1 = %d campaigns, token %q", len(page1.Campaigns), page1.NextPageToken)
	}
	link := hdr.Get("Link")
	if !strings.Contains(link, `rel="next"`) || !strings.Contains(link, "/v1/campaigns?") {
		t.Fatalf("Link header = %q", link)
	}
	page2, hdr2 := listPage(t, ts.URL+"/v1/campaigns?page_size=2&page_token="+page1.NextPageToken)
	if len(page2.Campaigns) != 1 || page2.NextPageToken != "" {
		t.Fatalf("page 2 = %d campaigns, token %q", len(page2.Campaigns), page2.NextPageToken)
	}
	if hdr2.Get("Link") != "" {
		t.Fatalf("last page advertises a next link: %q", hdr2.Get("Link"))
	}
	var got []string
	for _, c := range append(page1.Campaigns, page2.Campaigns...) {
		got = append(got, c.ID)
	}
	if strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Fatalf("paged ids %v, want submission order %v", got, ids)
	}

	// The legacy path 301s into the same paginated surface.
	legacy, _ := listPage(t, ts.URL+"/campaigns?page_size=2")
	if len(legacy.Campaigns) != 2 || legacy.NextPageToken != page1.NextPageToken {
		t.Fatalf("legacy redirect lost pagination: %+v", legacy)
	}

	for _, id := range ids {
		waitDone(t, ts.URL, id)
	}
}

// queryDoc fetches a results document.
func queryDoc(t *testing.T, url string) (resultsResponse, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var doc resultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc, resp.Header
}

// TestResultsQuery drives the query surface end to end: filters,
// metric ranges, top-k, percentile surfaces, and cell pagination —
// all served from the materialized snapshot with zero store rescans.
func TestResultsQuery(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	camp := postCampaign(t, ts.URL, testRequest)
	if got := waitDone(t, ts.URL, camp.ID); got.State != "done" {
		t.Fatalf("campaign = %+v", got)
	}
	base := ts.URL + "/v1/campaigns/" + camp.ID + "/results"

	full, _ := queryDoc(t, base)
	if len(full.Cells) != 4 || len(full.Aggregates) != 2 || full.NextPageToken != "" {
		t.Fatalf("unfiltered doc = %d cells, %d aggregates, token %q",
			len(full.Cells), len(full.Aggregates), full.NextPageToken)
	}
	scans := st.Stats().FullScans

	// Protocol filter narrows cells AND aggregates.
	leach, _ := queryDoc(t, base+"?protocol=leach")
	if len(leach.Cells) != 2 || len(leach.Aggregates) != 1 {
		t.Fatalf("protocol filter = %d cells, %d aggregates", len(leach.Cells), len(leach.Aggregates))
	}
	for _, c := range leach.Cells {
		if c.Protocol != "pure-LEACH" { // any ParseProtocol spelling selects the canonical protocol
			t.Fatalf("protocol filter leaked %q", c.Protocol)
		}
	}
	if leach.Completed != 4 {
		t.Fatalf("completed = %d, want the campaign-wide 4", leach.Completed)
	}

	// Top-k returns the cells with the largest metric values.
	delays := make([]float64, 0, 4)
	for _, c := range full.Cells {
		delays = append(delays, c.MeanDelayMs)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(delays)))
	top2, _ := queryDoc(t, base+"?metric=meanDelayMs&top=2")
	if len(top2.Cells) != 2 || top2.Cells[0].MeanDelayMs != delays[0] || top2.Cells[1].MeanDelayMs != delays[1] {
		t.Fatalf("top-2 by meanDelayMs = %+v, want values %v", top2.Cells, delays[:2])
	}

	// Metric range keeps the half-open slice the bounds describe.
	ranged, _ := queryDoc(t, fmt.Sprintf("%s?metric=meanDelayMs&min=%g", base, delays[1]))
	if len(ranged.Cells) != 2 {
		t.Fatalf("min filter kept %d cells, want 2", len(ranged.Cells))
	}

	// Percentile surfaces: exact order statistics per group.
	surf, _ := queryDoc(t, base+"?protocol=leach&metric=meanDelayMs&percentiles=0,100")
	if len(surf.Surfaces) != 1 || surf.Surfaces[0].N != 2 {
		t.Fatalf("surfaces = %+v", surf.Surfaces)
	}
	pts := surf.Surfaces[0].Percentiles
	lo, hi := leach.Cells[0].MeanDelayMs, leach.Cells[1].MeanDelayMs
	if hi < lo {
		lo, hi = hi, lo
	}
	if pts[0].Value != lo || pts[1].Value != hi {
		t.Fatalf("p0/p100 = %v, want %g/%g", pts, lo, hi)
	}

	// Cell pagination with a filter-bound cursor.
	page1, hdr := queryDoc(t, base+"?page_size=3")
	if len(page1.Cells) != 3 || page1.NextPageToken == "" {
		t.Fatalf("page 1 = %d cells, token %q", len(page1.Cells), page1.NextPageToken)
	}
	if len(page1.Aggregates) != 2 {
		t.Fatalf("aggregates must cover the whole filtered set, got %d groups", len(page1.Aggregates))
	}
	if !strings.Contains(hdr.Get("Link"), `rel="next"`) {
		t.Fatalf("Link header = %q", hdr.Get("Link"))
	}
	page2, _ := queryDoc(t, base+"?page_size=3&page_token="+page1.NextPageToken)
	if len(page2.Cells) != 1 || page2.NextPageToken != "" {
		t.Fatalf("page 2 = %d cells, token %q", len(page2.Cells), page2.NextPageToken)
	}
	if got := append(page1.Cells, page2.Cells...); fmt.Sprint(got) != fmt.Sprint(full.Cells) {
		t.Fatal("paged cells diverge from the unpaginated document")
	}

	// A cursor replayed under different filters is rejected, as are
	// unknown metrics — both through the error envelope.
	for _, path := range []string{
		base + "?protocol=leach&page_token=" + page1.NextPageToken,
		base + "?metric=bogus&top=1",
	} {
		resp, err := http.Get(path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
		if env := errorEnvelope(t, resp); env.Code != api.CodeInvalidRequest {
			t.Fatalf("GET %s: code %q", path, env.Code)
		}
	}

	// None of the queries above rescanned the store log.
	if got := st.Stats().FullScans; got != scans {
		t.Fatalf("queries performed %d full scans", got-scans)
	}
}

// TestResultReadsDoNotBlockSettlement is the regression gate for the
// materialized results cache: a storm of concurrent result reads
// against an ACTIVE campaign must not block cell settlement (reads
// rebuild their snapshot outside the campaign lock), the campaign must
// finish on time, and every observed document must be monotonic.
func TestResultReadsDoNotBlockSettlement(t *testing.T) {
	srv, ts, st := startServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close(); st.Close() }()

	camp := postCampaign(t, ts.URL, chaosRequest) // 8 cells
	url := ts.URL + "/v1/campaigns/" + camp.ID + "/results"

	done := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					return // server shutting down after test failure
				}
				var doc resultsResponse
				derr := json.NewDecoder(resp.Body).Decode(&doc)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil {
					t.Errorf("mid-run read: status %d, decode %v", resp.StatusCode, derr)
					return
				}
				if doc.Completed < last {
					t.Errorf("completed went backwards: %d after %d", doc.Completed, last)
					return
				}
				last = doc.Completed
				reads.Add(1)
			}
		}()
	}

	start := time.Now()
	final := waitDone(t, ts.URL, camp.ID)
	close(done)
	wg.Wait()
	if final.State != "done" || final.Completed != final.Total {
		t.Fatalf("campaign under read load settled as %+v", final)
	}
	if n := reads.Load(); n == 0 {
		t.Fatal("readers never completed a request — the regression scenario did not run")
	}
	t.Logf("campaign finished in %v under %d concurrent result reads", time.Since(start), reads.Load())
}
