// Package cluster distributes campaign cells across worker processes
// with a lease/heartbeat protocol and a first-class fault-tolerance
// layer.
//
// A Coordinator owns the work queue: campaign cells — self-contained
// (scenario, config) descriptors keyed by (campaign, index) — are
// submitted once and handed out in leases. A lease is a batch of cells
// with a deadline; the holding worker renews it (heartbeats) while
// executing and completes it with results. A lease whose deadline
// passes without renewal is presumed dead — its unsettled cells go
// straight back on the queue. Because every cell is deterministic and
// the results store is last-write-wins on content-addressed keys,
// duplicate execution is harmless, so expiry can be eager: losing a
// worker costs only the re-execution of its in-flight batch.
//
// Failure handling is graded rather than binary:
//
//   - A worker that dies (crash, SIGKILL, network partition) simply
//     stops renewing; its cells re-queue on expiry with no penalty.
//   - A cell that *reports* a failure is retried with exponential
//     backoff plus deterministic jitter, up to Options.MaxAttempts.
//   - A cell that keeps failing is poisoned: reported to the Sink as
//     terminally failed and never retried again — graceful degradation
//     instead of livelock.
//
// Claim batch sizes follow guided self-scheduling: large batches while
// the queue is deep (amortizing round-trips), shrinking as it drains so
// irregular cell costs — network-death runs vary wildly in length —
// cannot strand the tail of a campaign behind one slow worker.
//
// Workers run each cell on a resident caem.SimPool and are oblivious to
// campaign bookkeeping; the Queue interface is implemented both by the
// Coordinator itself (in-process workers) and by Remote (workers joined
// over HTTP via cmd/caem-serve -join). Chaos provides deterministic
// fault injection — dropped heartbeats, delayed renewals, a worker
// killed mid-lease, transient cell and store-write failures — so the
// differential gate can prove that a clustered campaign with injected
// worker deaths produces a byte-identical report to a single-process
// run.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/caem"
)

// Cell is one self-contained unit of cluster work: everything a worker
// needs to execute a campaign cell, plus the identity the coordinator
// needs to settle it. Cells travel over the wire as JSON; the config
// and scenario round-trip exactly (floats re-encode bit-identically),
// so a remote execution is bit-identical to a local one.
type Cell struct {
	// Campaign and Index identify the cell within its campaign grid.
	Campaign string `json:"campaign"`
	Index    int    `json:"index"`
	// Hash is the caem.CellHash content hash under which the result is
	// stored.
	Hash string `json:"hash"`
	// Scenario is the full scenario spec and Config the fully resolved
	// configuration (protocol and seed set, Workers pinned to 1).
	Scenario caem.Scenario `json:"scenario"`
	Config   caem.Config   `json:"config"`
}

// Key returns the cell's unique queue identity.
func (c Cell) Key() string { return fmt.Sprintf("%s/%d", c.Campaign, c.Index) }

// CellResult is a worker's verdict on one leased cell: either a full
// Result or an error string describing a (presumed transient) failure.
type CellResult struct {
	Campaign string       `json:"campaign"`
	Index    int          `json:"index"`
	Result   *caem.Result `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// Lease is a batch of cells granted to one worker under a heartbeat
// deadline. The worker must renew within TTLMillis or the coordinator
// presumes it dead and re-queues the cells. Epoch is the leadership
// epoch the lease was granted under (also embedded in the ID); leases
// from a dead epoch are fenced by the successor coordinator.
type Lease struct {
	ID        string `json:"id"`
	Worker    string `json:"worker"`
	Cells     []Cell `json:"cells"`
	TTLMillis int64  `json:"ttlMs"`
	Epoch     int64  `json:"epoch,omitempty"`
}

// ErrLeaseGone reports a renew/complete/release against a lease the
// coordinator no longer holds — it expired (and its cells re-queued) or
// never existed. The worker should drop the batch and claim fresh work;
// any results it computed are safely discarded because the re-queued
// cells will reproduce them bit-identically.
var ErrLeaseGone = errors.New("cluster: lease expired or unknown")

// ErrFenced reports an operation carrying a dead leadership epoch: a
// lease granted by a deposed coordinator arriving at its successor, or
// any write reaching a coordinator that has fenced itself after losing
// the leader lock. Like ErrLeaseGone the correct response is to drop
// the batch — but also to re-resolve the leader, because the caller is
// evidently talking across an epoch boundary.
var ErrFenced = errors.New("cluster: operation fenced (dead leadership epoch)")

// ErrDraining reports a Claim against a coordinator that has stopped
// granting work because it is shutting down. Workers should back off
// and retry — over HTTP this maps to 503 with a Retry-After header.
var ErrDraining = errors.New("cluster: coordinator is draining; no new leases")

// UnavailableError is the client-side form of a 503 from the
// coordinator: temporarily out of service, retry after the hint.
type UnavailableError struct {
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("cluster: coordinator unavailable (retry after %v)", e.RetryAfter)
}

// LeaderInfo is the GET /v1/cluster/leader document: where the current
// leader is reachable and at which epoch. Standbys serve it too, so a
// worker pointed at any member of the cluster can re-resolve the
// leader after a failover.
type LeaderInfo struct {
	LeaderURL string `json:"leaderUrl"`
	Epoch     int64  `json:"epoch"`
	Role      string `json:"role"` // leader | standby
}

// Queue is the work-distribution surface between workers and the
// coordinator. The Coordinator implements it in-process; Remote
// implements it over HTTP for joined worker processes.
type Queue interface {
	// Claim requests a batch of at most max cells. A nil lease (with nil
	// error) means no work is available right now.
	Claim(worker string, max int) (*Lease, error)
	// Renew extends the lease deadline; ErrLeaseGone after expiry.
	Renew(leaseID string) error
	// Complete settles the lease with one result per leased cell.
	Complete(leaseID string, results []CellResult) error
	// Release returns a lease early (graceful worker shutdown): the
	// completed results settle, every other cell re-queues immediately
	// with no retry penalty.
	Release(leaseID string, results []CellResult) error
}

// Sink receives cell lifecycle callbacks from the coordinator. CellDone
// persists the result; a non-nil return (for example a transient store
// write error) re-queues the cell through the same retry/backoff path
// as a worker-reported failure. CellFailed is terminal: the cell is
// poisoned and will not run again.
type Sink interface {
	CellStarted(c Cell)
	CellDone(c Cell, res *caem.Result) error
	CellFailed(c Cell, attempts int, err error)
}
